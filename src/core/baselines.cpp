#include "core/baselines.hpp"

#include <algorithm>

#include "graph/contraction_ref.hpp"

namespace camc::core {

using graph::Vertex;
using graph::WeightedEdge;

BspSvResult bsp_sv_components(const bsp::Comm& comm,
                              const graph::DistributedEdgeArray& graph,
                              const BspSvOptions& options) {
  const Vertex n = graph.vertex_count();
  cachesim::Session* trace = options.trace;
  BspSvResult result;
  result.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) result.labels[v] = v;
  if (n == 0) return result;

  std::uint64_t labels_base = 0, edges_base = 0;
  if (trace != nullptr) {
    labels_base = trace->allocate(n);
    edges_base = trace->allocate(2 * graph.local().size() + 2);
  }

  std::vector<Vertex> proposal(n);
  std::vector<Vertex> jump_source(n);
  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;

    // Hooking: propose, for each vertex, the smallest label seen across its
    // incident local edges; combine proposals with an element-wise min
    // all-reduce over the replicated array (O(n) volume, one superstep).
    std::copy(result.labels.begin(), result.labels.end(), proposal.begin());
    std::size_t index = 0;
    for (const WeightedEdge& e : graph.local()) {
      if (trace != nullptr) {
        trace->touch(edges_base + 2 * index);
        trace->touch(labels_base + e.u);
        trace->touch(labels_base + e.v);
      }
      ++index;
      const Vertex lu = result.labels[e.u];
      const Vertex lv = result.labels[e.v];
      const Vertex low = std::min(lu, lv);
      if (proposal[e.u] > low) proposal[e.u] = low;
      if (proposal[e.v] > low) proposal[e.v] = low;
    }
    proposal = comm.all_reduce_vector(
        proposal, [](Vertex a, Vertex b) { return std::min(a, b); });

    // One pointer-jumping pass per round (label distance doubles each
    // round, giving the O(log n)-round profile of the PBGL algorithm [14];
    // flattening fully here would hide the rounds the paper's baseline
    // actually pays for). Double-buffered: an in-place ascending pass would
    // chain through already-updated entries and flatten in one shot.
    jump_source.assign(proposal.begin(), proposal.end());
    for (Vertex v = 0; v < n; ++v) {
      if (trace != nullptr) trace->touch(labels_base + v);
      proposal[v] = jump_source[jump_source[v]];
    }

    const bool changed = proposal != result.labels;
    result.labels.swap(proposal);
    const int any_changed = comm.all_reduce(
        changed ? 1 : 0, [](int a, int b) { return a | b; }, 0);
    if (any_changed == 0) break;
  }

  result.components = graph::normalize_labels(result.labels);
  return result;
}

AsyncCcResult async_label_propagation(const bsp::Comm& comm,
                                      const graph::DistributedEdgeArray& graph,
                                      AsyncCcSharedState& shared,
                                      cachesim::Session* trace) {
  AsyncCcResult result;
  const Vertex n = graph.vertex_count();

  std::uint64_t labels_base = 0, edges_base = 0;
  if (trace != nullptr) {
    labels_base = trace->allocate(n);
    edges_base = trace->allocate(2 * graph.local().size() + 2);
  }

  // Chase-and-write-min on the shared array. memory_order_relaxed is
  // sufficient: the value set is monotonically decreasing and bounded, so
  // the fixpoint is unique regardless of interleaving.
  const auto chase = [&](Vertex v) {
    Vertex label = shared.labels[v].load(std::memory_order_relaxed);
    while (true) {
      if (trace != nullptr) trace->touch(labels_base + label);
      const Vertex next = shared.labels[label].load(std::memory_order_relaxed);
      if (next == label) return label;
      label = next;
    }
  };

  while (true) {
    ++result.sweeps;
    bool local_changed = false;
    std::size_t index = 0;
    for (const WeightedEdge& e : graph.local()) {
      if (trace != nullptr) trace->touch(edges_base + 2 * index);
      ++index;
      const Vertex ru = chase(e.u);
      const Vertex rv = chase(e.v);
      if (ru == rv) continue;
      const Vertex low = std::min(ru, rv);
      const Vertex high = std::max(ru, rv);
      Vertex expected = high;
      while (!shared.labels[high].compare_exchange_weak(
          expected, low, std::memory_order_relaxed)) {
        if (expected <= low) break;  // someone hooked it lower already
        // retry with the fresher value
      }
      local_changed = true;
    }
    const int any_changed = comm.all_reduce(
        local_changed ? 1 : 0, [](int a, int b) { return a | b; }, 0);
    if (any_changed == 0) break;
  }

  // Flatten to final labels (every rank computes the same result).
  result.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) result.labels[v] = chase(v);
  result.components = graph::normalize_labels(result.labels);
  return result;
}

}  // namespace camc::core
