#pragma once

// Prefix Selection (§2.4, step 2 of Iterated Sampling): given the permuted
// edge sample, find the longest prefix whose graph keeps at least t
// connected components, and return the contraction mapping it induces.
//
// Since every useful union reduces the component count by exactly one, the
// longest admissible prefix is found by uniting sample edges in order and
// stopping before the union that would drop the count below t.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace camc::core {

struct PrefixSelection {
  /// mapping[label] = contracted label, dense in [0, components).
  std::vector<graph::Vertex> mapping;
  /// Component count of (V, P) — the contracted vertex count (>= t unless
  /// the sample could not even keep t components, in which case it is the
  /// count after contracting the whole sample).
  graph::Vertex components = 0;
  /// Number of sample edges in the selected prefix.
  std::size_t prefix_length = 0;
};

/// Sequential (root-side) prefix selection over `label_space` vertices.
PrefixSelection select_prefix(graph::Vertex label_space,
                              std::span<const graph::WeightedEdge> sample,
                              graph::Vertex t);

}  // namespace camc::core
