#include "core/cc.hpp"

#include <cmath>
#include <memory>

#include "bsp/fault.hpp"
#include "core/baselines.hpp"
#include "core/cc_features.hpp"
#include "core/contract.hpp"
#include "core/sparsify.hpp"
#include "graph/contraction_ref.hpp"
#include "rng/philox.hpp"
#include "seq/union_find.hpp"

namespace camc::core {
namespace {

/// Root-side step 2 of §3.2: components of (labels, sample) as a dense
/// relabeling g over the current label space.
std::vector<Vertex> root_component_mapping(Vertex label_space,
                                           const std::vector<WeightedEdge>& sample,
                                           Vertex& components_out,
                                           cachesim::Session* trace) {
  seq::UnionFind dsu(label_space, trace);
  for (const WeightedEdge& e : sample) dsu.unite(e.u, e.v);
  std::vector<Vertex> mapping = dsu.labels();
  components_out = graph::normalize_labels(mapping);
  return mapping;
}

/// The paper's §3.2 iterated-sampling kernel — the portfolio's default
/// engine. The body predates the dispatcher and is collective-for-
/// collective identical to the pre-portfolio `connected_components`
/// (pinned by the CounterInvariance goldens).
CcResult sampling_components(const Context& ctx,
                             graph::DistributedEdgeArray& graph,
                             const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n = graph.vertex_count();
  cachesim::Session* trace = options.trace;
  rng::Philox gen(ctx.seed,
                  /*stream=*/0xCC00 + static_cast<std::uint64_t>(comm.rank()));

  CcResult result;
  if (n == 0) return result;
  const trace::Span all = ctx.span("cc", n);

  // Trace regions: the local edge slice, the broadcast mapping g, and (at
  // the root) the vertex-indexed component array C.
  std::uint64_t edges_base = 0, g_base = 0, c_base = 0;
  if (trace != nullptr) {
    edges_base = trace->allocate(2 * graph.local().size() + 2);
    g_base = trace->allocate(n);
    c_base = trace->allocate(n);
  }

  // C: vertex -> current component label; root-owned (§3.2 step 2).
  std::vector<Vertex> component(comm.rank() == 0 ? n : 0);
  for (Vertex v = 0; v < static_cast<Vertex>(component.size()); ++v)
    component[v] = v;

  const auto sample_target = static_cast<std::uint64_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 + options.epsilon) / 2.0));

  Vertex label_space = n;
  std::uint64_t edges_left = graph.global_edge_count(comm);
  while (edges_left > 0) {
    ++result.iterations;
    const trace::Span round = ctx.span("cc_round", result.iterations,
                                       edges_left);

    // (1) Sparsify. Once the sample budget covers the whole graph — or the
    // iteration cap trips — the whole edge set acts as the sample. In the
    // parallel-components mode the sample stays distributed (weights are
    // irrelevant to connectivity, so the local unweighted sampler is
    // always the right tool there).
    std::vector<WeightedEdge> sample;
    if (options.parallel_sample_components) {
      if (sample_target >= edges_left ||
          result.iterations >= options.max_iterations) {
        sample = graph.local();
      } else {
        UnweightedSparsifyOptions unweighted;
        unweighted.delta = options.delta;
        unweighted.trace = trace;
        unweighted.trace_base = edges_base;
        sample =
            sparsify_unweighted_local(ctx, graph, sample_target, gen,
                                      unweighted);
      }
    } else if (sample_target >= edges_left ||
               result.iterations >= options.max_iterations) {
      sample = graph.gather(comm);
    } else if (options.unweighted_fast_path) {
      UnweightedSparsifyOptions unweighted;
      unweighted.delta = options.delta;
      unweighted.trace = trace;
      unweighted.trace_base = edges_base;
      sample = sparsify_unweighted(ctx, graph, sample_target, gen, unweighted);
    } else {
      SparsifyOptions weighted;
      weighted.trace = trace;
      weighted.trace_base = edges_base;
      sample = sparsify_weighted(ctx, graph, sample_target, gen, weighted);
    }

    // (2) Components of the sample: sequentially at the root (the paper's
    // default) or in parallel over the still-distributed sample (§3.2's
    // suggested extension).
    std::vector<Vertex> mapping;
    Vertex components = 0;
    trace::Span comp = ctx.span("components", label_space);
    if (options.parallel_sample_components) {
      graph::DistributedEdgeArray sample_graph(label_space,
                                               std::move(sample));
      BspSvOptions sv;
      sv.trace = trace;
      BspSvResult sv_result = bsp_sv_components(comm, sample_graph, sv);
      mapping = std::move(sv_result.labels);
      components = sv_result.components;
      if (comm.rank() == 0) {
        for (Vertex v = 0; v < n; ++v) component[v] = mapping[component[v]];
      }
    } else {
      if (comm.rank() == 0) {
        mapping =
            root_component_mapping(label_space, sample, components, trace);
        for (Vertex v = 0; v < n; ++v) {
          if (trace != nullptr) {
            trace->touch(c_base + v);
            trace->touch(g_base + component[v]);
          }
          component[v] = mapping[component[v]];
        }
      }
      comm.broadcast(mapping);
      components = comm.broadcast_value(components);
    }
    comp.end();

    // (3) Local relabeling; loops vanish.
    const trace::Span relabel = ctx.span("relabel", graph.local().size());
    std::vector<WeightedEdge>& local = graph.local();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const Vertex u = mapping[local[i].u];
      const Vertex v = mapping[local[i].v];
      if (trace != nullptr) {
        trace->touch(edges_base + 2 * i);
        trace->touch(g_base + local[i].u);
        trace->touch(g_base + local[i].v);
      }
      if (u == v) continue;
      local[kept++] = WeightedEdge{u, v, local[i].weight};
    }
    local.resize(kept);

    label_space = components;
    edges_left = graph.global_edge_count(comm);
  }

  // Labels are already dense; replicate them.
  result.labels = std::move(component);
  comm.broadcast(result.labels);
  result.components = label_space;
  graph.set_vertex_count(label_space);
  return result;
}

/// kSv adapter: the Shiloach-Vishkin baseline behind the consume contract.
/// Adds no collectives over a direct bsp_sv_components call (pinned by the
/// dispatch bit-identity test).
CcResult sv_adapter(const Context& ctx, graph::DistributedEdgeArray& graph,
                    const CcOptions& options) {
  CcResult result;
  result.engine = CcEngine::kSv;
  if (graph.vertex_count() == 0) return result;
  const trace::Span all = ctx.span("cc_sv", graph.vertex_count());
  BspSvOptions sv;
  sv.max_rounds = options.max_rounds;
  sv.trace = options.trace;
  BspSvResult r = bsp_sv_components(ctx.comm, graph, sv);
  result.labels = std::move(r.labels);
  result.components = r.components;
  result.iterations = r.rounds;
  graph.local().clear();
  graph.set_vertex_count(result.components);
  return result;
}

constexpr std::uint64_t kLabelPropGuard = 0x6C61626C70726FB5ull;

/// kLabelProp adapter: the async shared-memory baseline needs one
/// AsyncCcSharedState shared by every rank, which the pre-dispatch callers
/// constructed outside the SPMD region. Here rank 0 owns it and hands the
/// pointer around with a guard word, so an injected payload corruption of
/// the rendezvous broadcast surfaces as a structured fault instead of a
/// wild dereference. Costs one broadcast + one barrier on top of a direct
/// async_label_propagation call (pinned by the dispatch bit-identity test).
CcResult labelprop_adapter(const Context& ctx,
                           graph::DistributedEdgeArray& graph,
                           const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n = graph.vertex_count();
  CcResult result;
  result.engine = CcEngine::kLabelProp;
  if (n == 0) return result;
  const trace::Span all = ctx.span("cc_labelprop", n);
  std::unique_ptr<AsyncCcSharedState> owned;
  std::vector<std::uint64_t> handoff;
  if (comm.rank() == 0) {
    owned = std::make_unique<AsyncCcSharedState>(n);
    const auto bits = reinterpret_cast<std::uint64_t>(owned.get());
    handoff = {bits, bits ^ kLabelPropGuard};
  }
  comm.broadcast(handoff);
  if (handoff.size() != 2 || (handoff[0] ^ kLabelPropGuard) != handoff[1])
    throw bsp::FaultError(
        "bsp: injected corruption detected in cc labelprop rendezvous");
  auto* shared = reinterpret_cast<AsyncCcSharedState*>(handoff[0]);
  AsyncCcResult r = async_label_propagation(comm, graph, *shared,
                                            options.trace);
  // Every rank must be done with *shared before rank 0's owner dies.
  comm.barrier();
  result.labels = std::move(r.labels);
  result.components = r.components;
  result.iterations = r.sweeps;
  graph.local().clear();
  graph.set_vertex_count(result.components);
  return result;
}

}  // namespace

CcResult connected_components(const Context& ctx,
                              graph::DistributedEdgeArray& graph,
                              const CcOptions& options) {
  CcEngine engine = options.engine;
  if (engine == CcEngine::kAuto) {
    // The communication-free probe, not the full one: the fitted table
    // only reads n, and the full probe's O(n) reduces cost as much as
    // the engine it would pick (see cc_features.hpp).
    const CcFeatures features = probe_cc_features_cheap(ctx, graph);
    engine = select_cc_engine(features);
  }
  switch (engine) {
    case CcEngine::kSv:
      return sv_adapter(ctx, graph, options);
    case CcEngine::kLabelProp:
      return labelprop_adapter(ctx, graph, options);
    case CcEngine::kFastSv:
      return fastsv_components(ctx, graph, options);
    case CcEngine::kAfforest:
      return afforest_components(ctx, graph, options);
    case CcEngine::kLdd:
      return ldd_components(ctx, graph, options);
    case CcEngine::kSampling:
    case CcEngine::kAuto:
      break;
  }
  return sampling_components(ctx, graph, options);
}

CcResult connected_components_dense(const Context& ctx,
                                    graph::DistributedMatrix matrix,
                                    const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const auto n = static_cast<Vertex>(matrix.rows());
  rng::Philox gen(ctx.seed,
                  /*stream=*/0xDC00 + static_cast<std::uint64_t>(comm.rank()));
  CcResult result;
  if (n == 0) return result;
  const trace::Span all = ctx.span("cc_dense", n);

  std::vector<Vertex> component(comm.rank() == 0 ? n : 0);
  for (Vertex v = 0; v < static_cast<Vertex>(component.size()); ++v)
    component[v] = v;

  const auto sample_target = static_cast<std::uint64_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 + options.epsilon) / 2.0));

  while (matrix.total(comm) > 0) {
    ++result.iterations;
    const trace::Span round = ctx.span("cc_round", result.iterations);
    const auto label_space = static_cast<Vertex>(matrix.rows());
    std::vector<WeightedEdge> sample;
    {
      const trace::Span span = ctx.span("sparsify", sample_target);
      sample = sparsify_matrix(comm, matrix, sample_target, gen);
    }

    std::vector<Vertex> mapping;
    Vertex components = 0;
    trace::Span comp = ctx.span("components", label_space);
    if (comm.rank() == 0) {
      mapping = root_component_mapping(label_space, sample, components,
                                       options.trace);
      for (Vertex v = 0; v < n; ++v) component[v] = mapping[component[v]];
    }
    comm.broadcast(mapping);
    components = comm.broadcast_value(components);
    comp.end();
    if (components == label_space) {
      if (result.iterations >= options.max_iterations) break;  // safety
      continue;  // sample missed every remaining edge; redraw
    }
    const trace::Span contract = ctx.span("contract", components);
    matrix = dense_bulk_contract(comm, matrix, mapping, components);
  }

  result.labels = std::move(component);
  comm.broadcast(result.labels);
  result.components = static_cast<Vertex>(matrix.rows());
  return result;
}

}  // namespace camc::core
