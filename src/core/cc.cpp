#include "core/cc.hpp"

#include <cmath>

#include "core/baselines.hpp"
#include "core/contract.hpp"
#include "core/sparsify.hpp"
#include "graph/contraction_ref.hpp"
#include "rng/philox.hpp"
#include "seq/union_find.hpp"

namespace camc::core {
namespace {

/// Root-side step 2 of §3.2: components of (labels, sample) as a dense
/// relabeling g over the current label space.
std::vector<Vertex> root_component_mapping(Vertex label_space,
                                           const std::vector<WeightedEdge>& sample,
                                           Vertex& components_out,
                                           cachesim::Session* trace) {
  seq::UnionFind dsu(label_space, trace);
  for (const WeightedEdge& e : sample) dsu.unite(e.u, e.v);
  std::vector<Vertex> mapping = dsu.labels();
  components_out = graph::normalize_labels(mapping);
  return mapping;
}

}  // namespace

CcResult connected_components(const Context& ctx,
                              graph::DistributedEdgeArray& graph,
                              const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n = graph.vertex_count();
  cachesim::Session* trace = options.trace;
  rng::Philox gen(ctx.seed,
                  /*stream=*/0xCC00 + static_cast<std::uint64_t>(comm.rank()));

  CcResult result;
  if (n == 0) return result;
  const trace::Span all = ctx.span("cc", n);

  // Trace regions: the local edge slice, the broadcast mapping g, and (at
  // the root) the vertex-indexed component array C.
  std::uint64_t edges_base = 0, g_base = 0, c_base = 0;
  if (trace != nullptr) {
    edges_base = trace->allocate(2 * graph.local().size() + 2);
    g_base = trace->allocate(n);
    c_base = trace->allocate(n);
  }

  // C: vertex -> current component label; root-owned (§3.2 step 2).
  std::vector<Vertex> component(comm.rank() == 0 ? n : 0);
  for (Vertex v = 0; v < static_cast<Vertex>(component.size()); ++v)
    component[v] = v;

  const auto sample_target = static_cast<std::uint64_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 + options.epsilon) / 2.0));

  Vertex label_space = n;
  std::uint64_t edges_left = graph.global_edge_count(comm);
  while (edges_left > 0) {
    ++result.iterations;
    const trace::Span round = ctx.span("cc_round", result.iterations,
                                       edges_left);

    // (1) Sparsify. Once the sample budget covers the whole graph — or the
    // iteration cap trips — the whole edge set acts as the sample. In the
    // parallel-components mode the sample stays distributed (weights are
    // irrelevant to connectivity, so the local unweighted sampler is
    // always the right tool there).
    std::vector<WeightedEdge> sample;
    if (options.parallel_sample_components) {
      if (sample_target >= edges_left ||
          result.iterations >= options.max_iterations) {
        sample = graph.local();
      } else {
        UnweightedSparsifyOptions unweighted;
        unweighted.delta = options.delta;
        unweighted.trace = trace;
        unweighted.trace_base = edges_base;
        sample =
            sparsify_unweighted_local(ctx, graph, sample_target, gen,
                                      unweighted);
      }
    } else if (sample_target >= edges_left ||
               result.iterations >= options.max_iterations) {
      sample = graph.gather(comm);
    } else if (options.unweighted_fast_path) {
      UnweightedSparsifyOptions unweighted;
      unweighted.delta = options.delta;
      unweighted.trace = trace;
      unweighted.trace_base = edges_base;
      sample = sparsify_unweighted(ctx, graph, sample_target, gen, unweighted);
    } else {
      SparsifyOptions weighted;
      weighted.trace = trace;
      weighted.trace_base = edges_base;
      sample = sparsify_weighted(ctx, graph, sample_target, gen, weighted);
    }

    // (2) Components of the sample: sequentially at the root (the paper's
    // default) or in parallel over the still-distributed sample (§3.2's
    // suggested extension).
    std::vector<Vertex> mapping;
    Vertex components = 0;
    trace::Span comp = ctx.span("components", label_space);
    if (options.parallel_sample_components) {
      graph::DistributedEdgeArray sample_graph(label_space,
                                               std::move(sample));
      BspSvOptions sv;
      sv.trace = trace;
      BspSvResult sv_result = bsp_sv_components(comm, sample_graph, sv);
      mapping = std::move(sv_result.labels);
      components = sv_result.components;
      if (comm.rank() == 0) {
        for (Vertex v = 0; v < n; ++v) component[v] = mapping[component[v]];
      }
    } else {
      if (comm.rank() == 0) {
        mapping =
            root_component_mapping(label_space, sample, components, trace);
        for (Vertex v = 0; v < n; ++v) {
          if (trace != nullptr) {
            trace->touch(c_base + v);
            trace->touch(g_base + component[v]);
          }
          component[v] = mapping[component[v]];
        }
      }
      comm.broadcast(mapping);
      components = comm.broadcast_value(components);
    }
    comp.end();

    // (3) Local relabeling; loops vanish.
    const trace::Span relabel = ctx.span("relabel", graph.local().size());
    std::vector<WeightedEdge>& local = graph.local();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const Vertex u = mapping[local[i].u];
      const Vertex v = mapping[local[i].v];
      if (trace != nullptr) {
        trace->touch(edges_base + 2 * i);
        trace->touch(g_base + local[i].u);
        trace->touch(g_base + local[i].v);
      }
      if (u == v) continue;
      local[kept++] = WeightedEdge{u, v, local[i].weight};
    }
    local.resize(kept);

    label_space = components;
    edges_left = graph.global_edge_count(comm);
  }

  // Labels are already dense; replicate them.
  result.labels = std::move(component);
  comm.broadcast(result.labels);
  result.components = label_space;
  graph.set_vertex_count(label_space);
  return result;
}

CcResult connected_components_dense(const Context& ctx,
                                    graph::DistributedMatrix matrix,
                                    const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const auto n = static_cast<Vertex>(matrix.rows());
  rng::Philox gen(ctx.seed,
                  /*stream=*/0xDC00 + static_cast<std::uint64_t>(comm.rank()));
  CcResult result;
  if (n == 0) return result;
  const trace::Span all = ctx.span("cc_dense", n);

  std::vector<Vertex> component(comm.rank() == 0 ? n : 0);
  for (Vertex v = 0; v < static_cast<Vertex>(component.size()); ++v)
    component[v] = v;

  const auto sample_target = static_cast<std::uint64_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 + options.epsilon) / 2.0));

  while (matrix.total(comm) > 0) {
    ++result.iterations;
    const trace::Span round = ctx.span("cc_round", result.iterations);
    const auto label_space = static_cast<Vertex>(matrix.rows());
    std::vector<WeightedEdge> sample;
    {
      const trace::Span span = ctx.span("sparsify", sample_target);
      sample = sparsify_matrix(comm, matrix, sample_target, gen);
    }

    std::vector<Vertex> mapping;
    Vertex components = 0;
    trace::Span comp = ctx.span("components", label_space);
    if (comm.rank() == 0) {
      mapping = root_component_mapping(label_space, sample, components,
                                       options.trace);
      for (Vertex v = 0; v < n; ++v) component[v] = mapping[component[v]];
    }
    comm.broadcast(mapping);
    components = comm.broadcast_value(components);
    comp.end();
    if (components == label_space) {
      if (result.iterations >= options.max_iterations) break;  // safety
      continue;  // sample missed every remaining edge; redraw
    }
    const trace::Span contract = ctx.span("contract", components);
    matrix = dense_bulk_contract(comm, matrix, mapping, components);
  }

  result.labels = std::move(component);
  comm.broadcast(result.labels);
  result.components = static_cast<Vertex>(matrix.rows());
  return result;
}

}  // namespace camc::core
