#pragma once

// O(log n)-approximate minimum cut (§3.3).
//
// The connectivity of a random subgraph estimates the minimum cut: sample
// subgraphs of increasing expected sparsity (iteration i keeps edge e with
// probability 1 - (1 - 2^-i)^w(e)) and output 2^j for the first iteration j
// in which any of Theta(log n) independent trials is disconnected.
//
// Two variants, as in the paper:
// * pipelined — all ceil(ln W) iterations' trials are labeled into one big
//   union graph and a single connected-components query answers them all:
//   O(1) supersteps.
// * early-stopping (the practical default) — iterations run one after the
//   other and stop at the first disconnection: O(log mu) supersteps but a
//   log-factor less space and less work when the minimum cut is small.

#include <cstdint>
#include <vector>

#include "bsp/comm.hpp"
#include "core/cc.hpp"
#include "graph/dist_edge_array.hpp"

namespace camc::core {

// Seed and recovery-attempt salt moved to camc::Context (ctx.seed /
// ctx.attempt); the comm-first overload below is a deprecated shim.

struct ApproxMinCutOptions {
  /// Trials per iteration; 0 derives ceil(trial_constant * ln n).
  std::uint32_t trials = 0;
  double trial_constant = 3.0;
  /// Run all iterations in one connected-components query.
  bool pipelined = false;
  /// Options forwarded to the inner connected-components calls.
  CcOptions cc;
};

struct ApproxMinCutResult {
  /// The estimate 2^j (an O(log n)-approximation w.h.p. for connected
  /// inputs). 0 when the input itself is disconnected.
  graph::Weight estimate = 0;
  std::uint32_t iterations_run = 0;
  std::uint32_t trials_per_iteration = 0;
};

/// Collective over ctx.comm. Does not modify the input edge array.
/// Randomness derives from (ctx.seed, ctx.attempt); attempt 0 stays
/// bit-identical to the pre-resilience streams.
ApproxMinCutResult approx_min_cut(const Context& ctx,
                                  const graph::DistributedEdgeArray& graph,
                                  const ApproxMinCutOptions& options = {});

}  // namespace camc::core
