#include "core/mincut.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/contract.hpp"
#include "core/prefix.hpp"
#include "core/sparsify.hpp"
#include "graph/contraction_ref.hpp"
#include "graph/dense_graph.hpp"
#include "graph/dist_matrix.hpp"
#include "graph/folded_dense.hpp"
#include "rng/alias_table.hpp"
#include "rng/permutation.hpp"
#include "rng/weighted_sampler.hpp"
#include "seq/karger_stein.hpp"

namespace camc::core {

using graph::DenseGraph;
using graph::DistributedEdgeArray;
using graph::DistributedMatrix;
using graph::RowDistribution;
using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;
using seq::CutResult;

namespace {

constexpr Weight kInfiniteCut = static_cast<Weight>(-1);

/// Recovery-attempt stream salt: shifts a stream family into a disjoint
/// namespace per retry attempt (resilience::resilient_min_cut), leaving
/// attempt 0 bit-identical to the original derivation. The shift places
/// the attempt bits above each family's (trial, rank, path) bits.
std::uint64_t attempt_salt(const Context& ctx, unsigned shift) {
  return static_cast<std::uint64_t>(ctx.attempt) << shift;
}

Vertex eager_target(std::uint64_t m) {
  return static_cast<Vertex>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::uint64_t>(m, 1)))) +
      1);
}

std::uint64_t sample_size(Vertex n_cur, double sigma) {
  return static_cast<std::uint64_t>(
      std::ceil(std::pow(static_cast<double>(n_cur), 1.0 + sigma)));
}

/// Applies `mapping` to a composed original->current label array.
void compose(std::vector<Vertex>& to_current,
             std::span<const Vertex> mapping) {
  for (Vertex& label : to_current) label = mapping[label];
}

/// Expands a side expressed in current labels back to original vertices.
std::vector<Vertex> expand_side(const std::vector<Vertex>& to_current,
                                std::span<const Vertex> side_labels) {
  const std::unordered_set<Vertex> in_side(side_labels.begin(),
                                           side_labels.end());
  std::vector<Vertex> out;
  for (Vertex v = 0; v < static_cast<Vertex>(to_current.size()); ++v)
    if (in_side.contains(to_current[v])) out.push_back(v);
  return out;
}

// ---------------------------------------------------------------------------
// Sequential trial
// ---------------------------------------------------------------------------

/// Draws `s` i.i.d. weighted edge samples from `edges`.
std::vector<WeightedEdge> weighted_sample(std::span<const WeightedEdge> edges,
                                          std::uint64_t s, rng::Philox& gen) {
  std::vector<double> weights(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    weights[i] = static_cast<double>(edges[i].weight);
  const rng::AliasTable table(weights);
  std::vector<WeightedEdge> sample;
  sample.reserve(s);
  for (std::uint64_t k = 0; k < s; ++k)
    sample.push_back(edges[table.sample(gen)]);
  return sample;
}

/// See set_sequential_trial_fault_for_testing.
bool g_sequential_trial_fault = false;

}  // namespace

void set_sequential_trial_fault_for_testing(bool enabled) {
  g_sequential_trial_fault = enabled;
}

CutResult sequential_min_cut_trial(const Context& ctx, Vertex n,
                                   std::span<const WeightedEdge> input_edges,
                                   const MinCutOptions& options,
                                   rng::Philox& gen) {
  if (g_sequential_trial_fault && !input_edges.empty())
    input_edges = input_edges.subspan(0, input_edges.size() - 1);
  std::vector<WeightedEdge> edges(input_edges.begin(), input_edges.end());
  const Vertex t0 = std::min<Vertex>(n, eager_target(edges.size()));

  std::vector<Vertex> to_current(n);
  for (Vertex v = 0; v < n; ++v) to_current[v] = v;

  // Eager Step: iterated sampling until t0 vertices remain.
  Vertex n_cur = n;
  while (n_cur > t0) {
    const trace::Span round = ctx.span("eager_round", n_cur, edges.size());
    if (edges.empty()) {
      // Disconnected: label 0's vertices form a zero cut.
      std::vector<Vertex> zero{0};
      return CutResult{0, expand_side(to_current, zero)};
    }
    const std::uint64_t s = sample_size(n_cur, options.sigma);
    const std::vector<WeightedEdge> sample = weighted_sample(edges, s, gen);
    const PrefixSelection selection = select_prefix(n_cur, sample, t0);
    edges = graph::contract_edges_reference(edges, selection.mapping);
    compose(to_current, selection.mapping);
    n_cur = selection.components;
  }

  // Recursive Step, sequential: full Karger-Stein on the dense remainder.
  const trace::Span leaf = ctx.span("karger_stein", n_cur);
  CutResult best = seq::recursive_contraction_run(
      graph::FoldedDense(n_cur, edges), gen);
  best.side = expand_side(to_current, best.side);
  return best;
}

std::uint32_t min_cut_trial_count(Vertex n, std::uint64_t m,
                                  const MinCutOptions& options) {
  if (options.forced_trials != 0)
    return std::min(options.forced_trials, options.max_trials);
  if (n < 2 || m == 0) return 1;

  // One trial succeeds when (a) the eager contraction to sqrt(m) vertices
  // preserves a minimum cut — probability >= t0(t0-1)/(n(n-1)) ~ m/n^2
  // (Lemma 2.1) — and (b) the recursive step then finds it — probability
  // 1/Omega(log t0) (Lemma 2.2).
  const double t0 = static_cast<double>(eager_target(m));
  const double nd = static_cast<double>(n);
  const double survive =
      std::min(1.0, (t0 * (t0 - 1.0)) / (nd * (nd - 1.0)));
  const double recurse = 1.0 / std::max(1.0, std::log2(t0));
  const double q = std::clamp(survive * recurse, 1e-12, 1.0);

  const double failure = std::max(1.0 - options.success_probability, 1e-12);
  double trials = std::log(failure) / std::log1p(-q);
  trials *= options.trial_multiplier;
  return static_cast<std::uint32_t>(std::clamp(
      std::ceil(trials), 1.0, static_cast<double>(options.max_trials)));
}

CutResult sequential_min_cut(const Context& ctx, Vertex n,
                             std::span<const WeightedEdge> edges,
                             const MinCutOptions& options) {
  // n < 2 has no cut to report; without this, the trial's base case never
  // enters its partition loop and the infinite sentinel leaked out as the
  // "minimum cut" (found by the fuzzer's single-vertex corner).
  if (n < 2) return CutResult{0, {}};
  const trace::Span all = ctx.span("min_cut", n, edges.size());
  const std::uint32_t trials = min_cut_trial_count(n, edges.size(), options);
  CutResult best;
  best.value = kInfiniteCut;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const trace::Span span = ctx.span("trial", trial);
    rng::Philox gen(ctx.seed,
                    /*stream=*/0x3C0000 + trial + attempt_salt(ctx, 32));
    CutResult candidate = sequential_min_cut_trial(ctx, n, edges, options, gen);
    if (candidate.value < best.value) best = std::move(candidate);
    if (best.value == 0) break;
  }
  return best;
}

AllMinCutsResult all_min_cuts(const Context& ctx, Vertex n,
                              std::span<const WeightedEdge> edges,
                              const MinCutOptions& options,
                              std::size_t max_cuts) {
  AllMinCutsResult result;
  // Union bound over the at most n(n-1)/2 minimum cuts (Lemma 4.3): an
  // extra O(log n) trial factor makes EVERY cut appear w.h.p., not just one.
  const auto enumeration_factor = static_cast<std::uint32_t>(
      std::ceil(2.0 * std::log(std::max<double>(2.0, n))));
  const std::uint64_t scaled =
      static_cast<std::uint64_t>(min_cut_trial_count(n, edges.size(), options)) *
      enumeration_factor;
  result.trials = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(scaled, options.max_trials));
  result.value = kInfiniteCut;

  // Canonical form: the sorted side not containing vertex 0.
  const auto canonicalize = [n](std::vector<Vertex> side) {
    std::sort(side.begin(), side.end());
    if (!side.empty() && side.front() == 0) {  // complement
      std::vector<Vertex> other;
      std::size_t cursor = 0;
      for (Vertex v = 0; v < n; ++v) {
        if (cursor < side.size() && side[cursor] == v)
          ++cursor;
        else
          other.push_back(v);
      }
      side = std::move(other);
    }
    return side;
  };

  for (std::uint32_t trial = 0; trial < result.trials; ++trial) {
    const trace::Span span = ctx.span("trial", trial);
    rng::Philox gen(ctx.seed,
                    /*stream=*/0x3C0000 + trial + attempt_salt(ctx, 32));
    CutResult candidate = sequential_min_cut_trial(ctx, n, edges, options, gen);
    if (candidate.value > result.value) continue;
    if (candidate.value < result.value) {
      result.value = candidate.value;
      result.cuts.clear();
      result.truncated = false;
    }
    std::vector<Vertex> side = canonicalize(std::move(candidate.side));
    if (std::find(result.cuts.begin(), result.cuts.end(), side) ==
        result.cuts.end()) {
      if (result.cuts.size() >= max_cuts) {
        result.truncated = true;
      } else {
        result.cuts.push_back(std::move(side));
      }
    }
  }
  if (result.value == kInfiniteCut) result.value = 0;
  return result;
}

// ---------------------------------------------------------------------------
// Distributed trial (p > t): one trial per processor group
// ---------------------------------------------------------------------------

namespace {

/// Redistributes `matrix` so that both halves of `comm` hold a full copy,
/// each row-distributed over its half. Returns this rank's half color and
/// fills `rows_out` with its rows under the half distribution.
struct HalfCopy {
  int color = 0;
  std::vector<Weight> rows;
  RowDistribution dist;
};

HalfCopy redistribute_to_halves(const bsp::Comm& comm,
                                const DistributedMatrix& matrix) {
  const int p = comm.size();
  const int half0 = (p + 1) / 2;  // sizes: ceil, floor
  const int half1 = p - half0;
  const std::uint64_t rows = matrix.rows();
  const std::uint64_t cols = matrix.cols();

  HalfCopy out;
  out.color = comm.rank() < half0 ? 0 : 1;
  const int my_half_size = out.color == 0 ? half0 : half1;
  const int my_half_offset = out.color == 0 ? 0 : half0;
  out.dist = RowDistribution{rows, my_half_size};

  const RowDistribution dist0{rows, half0};
  const RowDistribution dist1{rows, half1};

  std::vector<std::vector<Weight>> outbox(static_cast<std::size_t>(p));
  for (std::uint64_t i = matrix.row_begin(); i < matrix.row_end(); ++i) {
    const auto row = matrix.row(i);
    const int dest0 = dist0.owner(i);
    outbox[static_cast<std::size_t>(dest0)].insert(
        outbox[static_cast<std::size_t>(dest0)].end(), row.begin(), row.end());
    if (half1 > 0) {
      const int dest1 = half0 + dist1.owner(i);
      outbox[static_cast<std::size_t>(dest1)].insert(
          outbox[static_cast<std::size_t>(dest1)].end(), row.begin(),
          row.end());
    }
  }
  // Source ranks hold consecutive row ranges in rank order, so the inbox is
  // exactly this rank's rows, in order, under its half distribution.
  out.rows = comm.alltoallv(outbox);

  const int my_sub_rank = comm.rank() - my_half_offset;
  const std::uint64_t expected =
      out.dist.count(my_sub_rank) * cols;
  if (out.rows.size() != expected)
    throw std::logic_error("redistribute_to_halves: row accounting mismatch");
  return out;
}

/// Wraps half-copy rows into a DistributedMatrix over the sub-communicator.
DistributedMatrix matrix_from_rows(const bsp::Comm& sub, std::uint64_t rows,
                                   std::uint64_t cols,
                                   std::vector<Weight> data) {
  DistributedMatrix out(sub, rows, cols);
  out.local_storage() = std::move(data);
  return out;
}

/// Recursive Step (§4.3) over a processor group. `sample_fn` sets the
/// iterated-sampling batch size: n^(1+sigma) is the communication-avoiding
/// choice; the previous-BSP baseline passes small rounds instead.
///
/// `stream_base` carries the caller's (regime, trial) stream namespace and
/// `path` the recursion path (root 1; each split appends its branch color
/// bit). Branch generators are derived as
///   Philox(seed, stream_base | path << 20 | sub_rank)
/// — all streams of one root key, so Philox's counter-mode independence
/// guarantee applies. The previous code seeded each branch from a single
/// gen() draw with stream = color + 1: distinct random *keys* with reused
/// stream ids, for which Philox promises nothing — sibling branches (and
/// the two halves' ranks within one branch) could collide or correlate.
Weight recursive_step(const Context& ctx, DistributedMatrix matrix,
                      const MinCutOptions& options,
                      const std::function<std::uint64_t(Vertex)>& sample_fn,
                      rng::Philox& gen, std::uint64_t stream_base,
                      std::uint64_t path, std::vector<Vertex>& to_current,
                      std::vector<Vertex>& side_labels) {
  const bsp::Comm& comm = ctx.comm;
  const auto a = static_cast<Vertex>(matrix.rows());
  const trace::Span recursion = ctx.span("recursion", a, path);
  if (comm.size() == 1 || a <= options.leaf_size) {
    // Leaf: solve sequentially at the group root with full Karger-Stein.
    const trace::Span span = ctx.span("leaf", a);
    const std::vector<Weight> dense = matrix.to_dense(comm);
    Weight value = kInfiniteCut;
    std::vector<Vertex> side;
    if (comm.rank() == 0) {
      const CutResult leaf = seq::recursive_contraction_run(
          graph::FoldedDense(a, std::span<const Weight>(dense)), gen);
      value = leaf.value;
      side = leaf.side;
    }
    value = comm.broadcast_value(value);
    comm.broadcast(side);
    side_labels = std::move(side);
    return value;
  }

  const auto target = static_cast<Vertex>(
      std::ceil(static_cast<double>(a) / std::sqrt(2.0)) + 1);
  {
    const trace::Span span = ctx.span("dense_contract", a, target);
    matrix = dense_contract_to(comm, std::move(matrix), target, gen, sample_fn,
                               to_current);
  }

  const HalfCopy half = redistribute_to_halves(comm, matrix);
  const std::uint64_t rows = matrix.rows();
  const std::uint64_t cols = matrix.cols();
  bsp::Comm sub = comm.split(half.color);
  DistributedMatrix sub_matrix =
      matrix_from_rows(sub, rows, cols, half.rows);

  // Decorrelate the two branches (they share `gen` history up to here):
  // extend the recursion path by this branch's color and key the child
  // stream on (path, sub-rank) under the root seed. The sub-rank component
  // keeps per-rank sampling inside the branch independent.
  const std::uint64_t child_path =
      (path << 1) | static_cast<std::uint64_t>(half.color);
  rng::Philox branch_gen(ctx.seed,
                         stream_base | (child_path << 20) |
                             static_cast<std::uint64_t>(sub.rank()));
  const Weight branch =
      recursive_step(ctx.fork(sub), std::move(sub_matrix), options, sample_fn,
                     branch_gen, stream_base, child_path, to_current,
                     side_labels);

  // Best of the two branches; the winning branch's ranks keep their side.
  const Weight best = comm.all_reduce(
      branch, [](Weight x, Weight y) { return std::min(x, y); },
      kInfiniteCut);
  if (branch != best) side_labels.clear();
  return best;
}

/// One distributed trial on a processor group. `all_edges` is the full
/// replicated edge list (the p > t regime replicates the graph, exactly as
/// the p <= t regime "broadcasts the graph"); the group re-partitions it
/// across its own ranks.
Weight distributed_trial(const Context& ctx, Vertex n,
                         const std::vector<WeightedEdge>& all_edges,
                         const MinCutOptions& options, std::uint64_t trial,
                         std::vector<Vertex>& side_out, bool& side_valid) {
  const bsp::Comm& group = ctx.comm;
  const trace::Span span_trial = ctx.span("trial", trial);
  rng::Philox gen(ctx.seed,
                  /*stream=*/0xD0000000ull + (trial << 8) +
                      static_cast<std::uint64_t>(group.rank()) +
                      attempt_salt(ctx, 36));
  // Root-driven choices (prefix selection) must be deterministic per trial,
  // while local sampling needs per-rank streams; both hold by keying on
  // (trial, rank) and doing root work only at rank 0.

  const std::uint64_t m = all_edges.size();
  const auto gs = static_cast<std::uint64_t>(group.size());
  const auto gr = static_cast<std::uint64_t>(group.rank());
  DistributedEdgeArray graph(
      n, std::vector<WeightedEdge>(
             all_edges.begin() + static_cast<std::ptrdiff_t>(m * gr / gs),
             all_edges.begin() +
                 static_cast<std::ptrdiff_t>(m * (gr + 1) / gs)));
  const Vertex t0 = std::min<Vertex>(n, eager_target(m));

  std::vector<Vertex> to_current(n);
  for (Vertex v = 0; v < n; ++v) to_current[v] = v;

  // Eager Step (§4.2): sparsify + prefix selection + sparse contraction.
  Vertex n_cur = n;
  while (n_cur > t0) {
    const trace::Span round = ctx.span("eager_round", n_cur);
    if (graph.global_edge_count(group) == 0) {
      // Disconnected input: zero cut, one side = label 0.
      side_out.clear();
      for (Vertex v = 0; v < n; ++v)
        if (to_current[v] == 0) side_out.push_back(v);
      side_valid = true;
      return 0;
    }
    const std::uint64_t s = sample_size(n_cur, options.sigma);
    const std::vector<WeightedEdge> sample =
        sparsify_weighted(ctx, graph, s, gen);

    std::vector<Vertex> mapping;
    Vertex components = 0;
    if (group.rank() == 0) {
      const PrefixSelection selection = select_prefix(n_cur, sample, t0);
      mapping = selection.mapping;
      components = selection.components;
    }
    group.broadcast(mapping);
    components = group.broadcast_value(components);
    if (components == n_cur) continue;  // useless sample; draw again

    {
      const trace::Span contract = ctx.span("contract", components);
      graph = sparse_bulk_contract(group, graph, mapping, components, gen);
    }
    compose(to_current, mapping);
    n_cur = components;
  }

  // Recursive Step on the dense representation.
  const trace::Span recursive = ctx.span("recursive", n_cur);
  DistributedMatrix matrix =
      DistributedMatrix::from_edges(group, n_cur, graph.local());
  std::vector<Vertex> side_labels;
  const double sigma = options.sigma;
  const Weight value = recursive_step(
      ctx, std::move(matrix), options,
      [sigma](Vertex a) { return sample_size(a, sigma); }, gen,
      /*stream_base=*/(1ull << 63) | attempt_salt(ctx, 54) |
          (trial << 40),
      /*path=*/1, to_current, side_labels);

  // Reconstruct the side in original ids on whichever ranks still hold it.
  side_valid = !side_labels.empty();
  if (side_valid) side_out = expand_side(to_current, side_labels);
  return value;
}

}  // namespace

BaselineMinCutOutcome min_cut_previous_bsp(const Context& ctx,
                                           const DistributedEdgeArray& graph,
                                           const MinCutOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n = graph.vertex_count();
  BaselineMinCutOutcome outcome;
  if (n < 2) return outcome;
  const std::uint64_t m = graph.global_edge_count(comm);
  if (m == 0) return outcome;

  // Classic repetition count: ~log^2 n runs at success 0.9-ish; derive from
  // the per-run 1/O(log n) success like the sequential Karger-Stein does.
  std::uint32_t runs = options.forced_trials;
  if (runs == 0) {
    const double q =
        1.0 / std::max(1.0, std::log2(static_cast<double>(n)));
    const double failure =
        std::max(1.0 - options.success_probability, 1e-12);
    runs = static_cast<std::uint32_t>(std::clamp(
        std::ceil(std::log(failure) / std::log1p(-q)), 1.0,
        static_cast<double>(options.max_trials)));
  }
  outcome.runs = runs;
  const trace::Span all = ctx.span("baseline", n, runs);

  Weight best = kInfiniteCut;
  for (std::uint32_t run = 0; run < runs; ++run) {
    const trace::Span span = ctx.span("run", run);
    rng::Philox gen(ctx.seed,
                    /*stream=*/0xBA5E0000ull + (static_cast<std::uint64_t>(run)
                                                << 8) +
                        static_cast<std::uint64_t>(comm.rank()) +
                        attempt_salt(ctx, 36));
    DistributedMatrix matrix =
        DistributedMatrix::from_edges(comm, n, graph.local());
    std::vector<Vertex> to_current(n);
    for (Vertex v = 0; v < n; ++v) to_current[v] = v;
    std::vector<Vertex> side_labels;
    // Round-by-round sampling (modeling the PRAM simulation's O(log n)
    // rounds per contraction phase): small batches, many supersteps —
    // the non-communication-avoiding profile.
    const Weight value = recursive_step(
        ctx, std::move(matrix), options,
        [](Vertex a) { return std::max<std::uint64_t>(8, a / 16); }, gen,
        /*stream_base=*/(3ull << 62) | attempt_salt(ctx, 54) |
            (static_cast<std::uint64_t>(run) << 40),
        /*path=*/1, to_current, side_labels);
    best = std::min(best, value);
    if (best == 0) break;
  }
  outcome.value = best == kInfiniteCut ? 0 : best;
  return outcome;
}

MinCutOutcome min_cut(const Context& ctx,
                      const DistributedEdgeArray& graph,
                      const MinCutOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n = graph.vertex_count();
  const std::uint64_t m = graph.global_edge_count(comm);
  MinCutOutcome outcome;
  if (n < 2) return outcome;
  const trace::Span all = ctx.span("min_cut", n, m);

  const std::uint32_t trials = min_cut_trial_count(n, m, options);
  outcome.trials = trials;
  const int p = comm.size();

  Weight best_value = kInfiniteCut;
  std::vector<Vertex> best_side;
  bool best_side_valid = false;

  if (static_cast<std::uint32_t>(p) <= trials) {
    // Replicate the graph; every rank runs trials rank, rank+p, rank+2p, ...
    // sequentially. The per-trial RNG stream depends only on the trial
    // index, so results are independent of p.
    std::vector<WeightedEdge> all_edges;
    {
      const trace::Span replicate = ctx.span("replicate", m);
      all_edges = comm.all_gather(graph.local());
    }
    for (std::uint32_t trial = comm.rank(); trial < trials;
         trial += static_cast<std::uint32_t>(p)) {
      const trace::Span span = ctx.span("trial", trial);
      rng::Philox gen(ctx.seed,
                    /*stream=*/0x3C0000 + trial + attempt_salt(ctx, 32));
      CutResult candidate =
          sequential_min_cut_trial(ctx, n, all_edges, options, gen);
      if (candidate.value < best_value) {
        best_value = candidate.value;
        best_side = std::move(candidate.side);
        best_side_valid = true;
      }
      if (best_value == 0) break;
    }
  } else {
    // p > t: replicate the graph, then one group of ~p/t ranks per trial.
    outcome.used_distributed_trials = true;
    std::vector<WeightedEdge> all_edges;
    {
      const trace::Span replicate = ctx.span("replicate", m);
      all_edges = comm.all_gather(graph.local());
    }
    const auto t64 = static_cast<std::uint64_t>(trials);
    const auto group_index = static_cast<int>(
        static_cast<std::uint64_t>(comm.rank()) * t64 /
        static_cast<std::uint64_t>(p));
    bsp::Comm group = comm.split(group_index);
    best_side_valid = false;
    best_value =
        distributed_trial(ctx.fork(group), n, all_edges, options,
                          static_cast<std::uint64_t>(group_index), best_side,
                          best_side_valid);
  }

  outcome.value = comm.all_reduce(
      best_value, [](Weight a, Weight b) { return std::min(a, b); },
      kInfiniteCut);

  if (options.want_side) {
    // Pick the lowest rank that achieved the best value with a valid side
    // and broadcast its side.
    const int mine = (best_value == outcome.value && best_side_valid)
                         ? comm.rank()
                         : p;
    const int owner = comm.all_reduce(
        mine, [](int a, int b) { return std::min(a, b); }, p);
    if (owner < p) {
      if (comm.rank() != owner) best_side.clear();
      comm.broadcast(best_side, owner);
      outcome.side = std::move(best_side);
      outcome.side_valid = true;
    }
  }
  if (outcome.value == kInfiniteCut) outcome.value = 0;  // n>=2, m==0
  return outcome;
}

}  // namespace camc::core
