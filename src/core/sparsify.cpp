#include "core/sparsify.hpp"

#include <cmath>

#include "rng/alias_table.hpp"
#include "rng/permutation.hpp"

namespace camc::core {
namespace {

/// Draws `count` edges from `slice` with probability proportional to edge
/// weight, using the configured sampler.
std::vector<WeightedEdge> draw_local(const std::vector<WeightedEdge>& slice,
                                     std::uint64_t count, rng::Philox& gen,
                                     const SparsifyOptions& options) {
  std::vector<WeightedEdge> out;
  if (count == 0 || slice.empty()) return out;
  out.reserve(count);
  std::vector<double> weights(slice.size());
  for (std::size_t i = 0; i < slice.size(); ++i)
    weights[i] = static_cast<double>(slice[i].weight);
  const auto note = [&](std::size_t index) {
    if (options.trace != nullptr)
      options.trace->touch(options.trace_base + 2 * index);
    return index;
  };
  if (options.sampler == rng::SamplerKind::kAlias) {
    const rng::AliasTable table(weights);
    for (std::uint64_t k = 0; k < count; ++k)
      out.push_back(slice[note(table.sample(gen))]);
  } else {
    const rng::PrefixSumSampler sampler(weights);
    for (std::uint64_t k = 0; k < count; ++k)
      out.push_back(slice[note(sampler.sample(gen))]);
  }
  return out;
}

}  // namespace

std::vector<WeightedEdge> sparsify_weighted(
    const bsp::Comm& comm, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen, const SparsifyOptions& options,
    int root) {
  // (1) Gather slice weights W_i at the root.
  const Weight local_weight = graph.local_weight();
  const std::vector<Weight> slice_weights =
      comm.gather(std::vector<Weight>{local_weight}, root);

  // (2) Root splits the s draws into per-rank counts by the multinomial
  //     over W_i / sum(W), then scatters one count per rank.
  std::vector<std::uint64_t> counts;
  bool graph_is_empty = false;
  if (comm.rank() == root) {
    counts.assign(static_cast<std::size_t>(comm.size()), 0);
    Weight total = 0;
    for (const Weight w : slice_weights) total += w;
    if (total == 0) {
      graph_is_empty = true;
    } else {
      std::vector<double> rank_weights(slice_weights.size());
      for (std::size_t i = 0; i < slice_weights.size(); ++i)
        rank_weights[i] = static_cast<double>(slice_weights[i]);
      const rng::AliasTable ranks(rank_weights);
      for (std::uint64_t k = 0; k < s; ++k) ++counts[ranks.sample(gen)];
    }
  }
  const std::vector<std::uint64_t> my_count_vec = comm.scatterv(
      counts, std::vector<std::uint64_t>(static_cast<std::size_t>(comm.size()), 1),
      root);
  const std::uint64_t my_count = my_count_vec.at(0);
  graph_is_empty = comm.broadcast_value(graph_is_empty ? 1 : 0, root) != 0;
  if (graph_is_empty) return {};

  // (3) Local weighted draws; gather at the root.
  const std::vector<WeightedEdge> local_sample =
      draw_local(graph.local(), my_count, gen, options);
  std::vector<WeightedEdge> sample = comm.gather(local_sample, root);

  // (4) Random permutation at the root: makes every sample position
  //     identically distributed (required by prefix selection).
  if (comm.rank() == root) rng::shuffle(sample, gen);
  return sample;
}

std::vector<WeightedEdge> sparsify_unweighted(
    const bsp::Comm& comm, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen,
    const UnweightedSparsifyOptions& options, int root) {
  return comm.gather(
      sparsify_unweighted_local(comm, graph, s, gen, options), root);
}

std::vector<WeightedEdge> sparsify_unweighted_local(
    const bsp::Comm& comm, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen,
    const UnweightedSparsifyOptions& options) {
  const auto local_m = static_cast<std::uint64_t>(graph.local().size());
  const std::uint64_t total_m = comm.all_reduce(
      local_m, std::plus<std::uint64_t>{}, std::uint64_t{0});
  if (total_m == 0) return {};

  const double n = std::max<double>(2.0, graph.vertex_count());
  const double expected = static_cast<double>(s) *
                          static_cast<double>(local_m) /
                          static_cast<double>(total_m);
  const double threshold = options.small_slice_factor * std::log(n) /
                           (options.delta * options.delta);

  std::vector<WeightedEdge> local_sample;
  if (expected < threshold || static_cast<double>(local_m) <= expected) {
    // Tiny slice: contribute everything (never under-samples).
    local_sample = graph.local();
    if (options.trace != nullptr)
      for (std::uint64_t i = 0; i < local_m; ++i)
        options.trace->touch(options.trace_base + 2 * i);
  } else {
    const auto count = static_cast<std::uint64_t>(
        std::ceil((1.0 + options.delta) * expected));
    local_sample.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      const std::uint64_t index = gen.bounded(local_m);
      if (options.trace != nullptr)
        options.trace->touch(options.trace_base + 2 * index);
      local_sample.push_back(graph.local()[index]);
    }
  }
  return local_sample;
}

}  // namespace camc::core
