// Portfolio CC engines behind the connected_components dispatcher: FastSV,
// Afforest, and low-diameter decomposition. Each is a collective over
// ctx.comm, consumes the edge array like the sampling kernel, returns
// replicated dense labels, and is deterministic given (seed, p). Because
// every cross-rank combine is a min-reduction (or a root union-find over
// the full remaining edge set) followed by normalize_labels, the final
// labels are in fact identical across p as well.

#include <algorithm>
#include <cstring>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "core/cc.hpp"
#include "graph/contraction_ref.hpp"
#include "rng/philox.hpp"
#include "seq/union_find.hpp"

namespace camc::core {

using graph::Vertex;
using graph::WeightedEdge;

const char* cc_engine_name(CcEngine engine) noexcept {
  switch (engine) {
    case CcEngine::kSampling: return "sampling";
    case CcEngine::kSv: return "sv";
    case CcEngine::kLabelProp: return "labelprop";
    case CcEngine::kFastSv: return "fastsv";
    case CcEngine::kAfforest: return "afforest";
    case CcEngine::kLdd: return "ldd";
    case CcEngine::kAuto: return "auto";
  }
  return "sampling";
}

bool parse_cc_engine(std::string_view name, CcEngine* out) noexcept {
  for (const CcEngine engine :
       {CcEngine::kSampling, CcEngine::kSv, CcEngine::kLabelProp,
        CcEngine::kFastSv, CcEngine::kAfforest, CcEngine::kLdd,
        CcEngine::kAuto}) {
    if (name == cc_engine_name(engine)) {
      if (out != nullptr) *out = engine;
      return true;
    }
  }
  return false;
}

namespace {

constexpr Vertex kNoLabel = std::numeric_limits<Vertex>::max();

Vertex min_vertex(Vertex a, Vertex b) noexcept { return a < b ? a : b; }

/// The consume contract shared with the sampling kernel: the caller's edge
/// array ends up edgeless over the quotient vertex set.
void consume_graph(graph::DistributedEdgeArray& graph, Vertex components) {
  graph.local().clear();
  graph.set_vertex_count(components);
}

}  // namespace

CcResult fastsv_components(const Context& ctx,
                           graph::DistributedEdgeArray& graph,
                           const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n = graph.vertex_count();
  cachesim::Session* trace = options.trace;

  CcResult result;
  result.engine = CcEngine::kFastSv;
  if (n == 0) return result;
  const trace::Span all = ctx.span("cc_fastsv", n);

  std::uint64_t f_base = 0, gp_base = 0, edges_base = 0;
  if (trace != nullptr) {
    f_base = trace->allocate(n);
    gp_base = trace->allocate(n);
    edges_base = trace->allocate(2 * graph.local().size() + 2);
  }

  // f: parent array, replicated and identical on every rank after each
  // round's min all-reduce. gp: grandparents, recomputed locally. next:
  // this round's proposals, seeded from f so the reduce can only lower.
  std::vector<Vertex> f(n), gp(n), next(n);
  for (Vertex v = 0; v < n; ++v) f[v] = v;

  const std::vector<WeightedEdge>& local = graph.local();
  while (result.iterations < options.max_rounds) {
    ++result.iterations;
    const trace::Span round = ctx.span("fastsv_round", result.iterations);

    for (Vertex v = 0; v < n; ++v) {
      if (trace != nullptr) {
        trace->touch(f_base + v);
        trace->touch(gp_base + v);
      }
      gp[v] = f[f[v]];
    }
    next = f;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const WeightedEdge& e = local[i];
      if (trace != nullptr) trace->touch(edges_base + 2 * i);
      const Vertex gu = gp[e.u], gv = gp[e.v];
      // Stochastic hooking: f[f[u]] <- gp[v] and the symmetric move.
      next[f[e.u]] = min_vertex(next[f[e.u]], gv);
      next[f[e.v]] = min_vertex(next[f[e.v]], gu);
      // Aggressive hooking: f[u] <- gp[v] and the symmetric move.
      next[e.u] = min_vertex(next[e.u], gv);
      next[e.v] = min_vertex(next[e.v], gu);
    }
    // Shortcutting: f[v] <- f[f[v]].
    for (Vertex v = 0; v < n; ++v) next[v] = min_vertex(next[v], gp[v]);

    // One reduce both combines the three hooking rules across ranks and
    // detects termination: f is monotone non-increasing, so "no entry
    // changed" is a globally consistent fixpoint test on the replicated
    // reduced array — no separate changed-flag collective.
    std::vector<Vertex> reduced = comm.all_reduce_vector(next, min_vertex);
    const bool changed = reduced != f;
    f.swap(reduced);
    if (!changed) break;
  }

  // At the fixpoint f is flat (f[f[v]] == f[v]) and constant on every
  // component; normalize to dense first-occurrence labels.
  result.labels = std::move(f);
  result.components = graph::normalize_labels(result.labels);
  consume_graph(graph, result.components);
  return result;
}

CcResult afforest_components(const Context& ctx,
                             graph::DistributedEdgeArray& graph,
                             const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n = graph.vertex_count();
  cachesim::Session* trace = options.trace;

  CcResult result;
  result.engine = CcEngine::kAfforest;
  if (n == 0) return result;
  const trace::Span all = ctx.span("cc_afforest", n);

  std::uint64_t edges_base = 0;
  if (trace != nullptr) edges_base = trace->allocate(2 * graph.local().size() + 2);

  // Sampled neighbor rounds: round r contributes each rank's r-th block of
  // ~n/p local edges (the edge array is unordered, so consecutive blocks
  // stand in for Afforest's per-vertex neighbor samples) to a root-held
  // union-find over the full vertex space.
  const auto budget = static_cast<std::size_t>(
      std::max<Vertex>(1, n / static_cast<Vertex>(comm.size())));
  const std::uint32_t rounds = std::max<std::uint32_t>(1, options.neighbor_rounds);
  seq::UnionFind dsu(comm.rank() == 0 ? n : 0, trace);
  const std::vector<WeightedEdge>& local = graph.local();
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const trace::Span sample_span = ctx.span("afforest_sample", r + 1);
    const std::size_t begin = std::min<std::size_t>(r * budget, local.size());
    const std::size_t end = std::min<std::size_t>(begin + budget, local.size());
    const std::vector<WeightedEdge> sampled = comm.gather(
        std::span<const WeightedEdge>(local.data() + begin, end - begin));
    if (comm.rank() == 0)
      for (const WeightedEdge& e : sampled) dsu.unite(e.u, e.v);
  }

  // Settle: broadcast the sampled components (raw union-find roots). Any
  // edge inside one of them — in particular the giant component that the
  // sample has already stitched together — is skipped by the final pass.
  std::vector<Vertex> settled;
  {
    const trace::Span settle_span = ctx.span("afforest_settle", n);
    if (comm.rank() == 0) settled = dsu.labels();
    comm.broadcast(settled);
  }

  // Final pass: gather only the still-crossing edges.
  std::uint64_t crossing = 0;
  {
    std::vector<WeightedEdge>& mine = graph.local();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (trace != nullptr) trace->touch(edges_base + 2 * i);
      if (settled[mine[i].u] == settled[mine[i].v]) continue;
      mine[kept++] = mine[i];
    }
    mine.resize(kept);
    crossing = graph.global_edge_count(comm);
  }
  const trace::Span final_span = ctx.span("afforest_final", crossing);
  const std::vector<WeightedEdge> rest = graph.gather(comm);
  std::vector<Vertex> mapping;
  Vertex components = 0;
  if (comm.rank() == 0) {
    for (const WeightedEdge& e : rest) dsu.unite(e.u, e.v);
    mapping = dsu.labels();
    components = graph::normalize_labels(mapping);
  }
  comm.broadcast(mapping);
  components = comm.broadcast_value(components);

  result.labels = std::move(mapping);
  result.components = components;
  result.iterations = rounds + 1;
  consume_graph(graph, components);
  return result;
}

namespace {

/// Geometric cluster-start delay for LDD: the number of leading Philox
/// lanes >= beta (failure) before the first success, capped at 8. Keyed by
/// (seed, attempt, level, vertex) only — identical on every rank, so the
/// decomposition is partition-independent.
std::uint8_t ldd_delay(std::uint64_t seed, std::uint32_t attempt,
                       std::uint32_t level, Vertex v,
                       std::uint32_t threshold) noexcept {
  std::uint8_t delay = 0;
  for (std::uint32_t block = 0; block < 2; ++block) {
    const rng::PhiloxBlock out = rng::philox4x32(
        {v, level, 0x4C4400u + block, attempt},
        {static_cast<std::uint32_t>(seed),
         static_cast<std::uint32_t>(seed >> 32)});
    for (const std::uint32_t lane : out) {
      if (lane < threshold) return delay;
      ++delay;
    }
  }
  return delay;  // 8: the cap
}

}  // namespace

CcResult ldd_components(const Context& ctx,
                        graph::DistributedEdgeArray& graph,
                        const CcOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  const Vertex n0 = graph.vertex_count();
  cachesim::Session* trace = options.trace;

  CcResult result;
  result.engine = CcEngine::kLdd;
  if (n0 == 0) return result;
  const trace::Span all = ctx.span("cc_ldd", n0);

  std::uint64_t edges_base = 0;
  if (trace != nullptr) edges_base = trace->allocate(2 * graph.local().size() + 2);

  const double beta = std::clamp(options.ldd_beta, 0.01, 0.99);
  const auto threshold = static_cast<std::uint32_t>(beta * 4294967296.0);

  // comp: original vertex -> current quotient label; composed through each
  // level's cluster labeling. Replicated (every level's labels are).
  std::vector<Vertex> comp(n0);
  for (Vertex v = 0; v < n0; ++v) comp[v] = v;

  Vertex ns = n0;
  std::uint64_t edges_left = graph.global_edge_count(comm);
  std::uint32_t level = 0;
  while (edges_left > 0) {
    ++level;
    const bool give_up = level > options.max_iterations;

    Vertex nc = ns;
    std::vector<Vertex> labels;
    if (!give_up) {
      const trace::Span level_span = ctx.span("ldd_level", level, edges_left);

      // Per-vertex geometric start delays, then frozen-label ball growing:
      // a vertex that is labeled never changes within the level, an
      // unlabeled vertex adopts the min neighboring label (or starts its
      // own cluster once its delay expires). Every vertex self-activates
      // by round delay[v] <= 8, so a level runs at most 9 rounds.
      std::vector<std::uint8_t> delay(ns);
      for (Vertex v = 0; v < ns; ++v)
        delay[v] = ldd_delay(ctx.seed, ctx.attempt, level, v, threshold);

      labels.assign(ns, kNoLabel);
      const std::vector<WeightedEdge>& local = graph.local();
      std::uint32_t round = 0;
      for (;;) {
        const trace::Span round_span = ctx.span("ldd_round", round + 1);
        bool any_unlabeled = false;
        for (Vertex v = 0; v < ns; ++v)
          if (labels[v] == kNoLabel) {
            if (delay[v] <= round) labels[v] = v;
            else any_unlabeled = true;
          }
        if (!any_unlabeled && round > 0) break;
        std::vector<Vertex> prop = labels;
        for (std::size_t i = 0; i < local.size(); ++i) {
          const WeightedEdge& e = local[i];
          if (trace != nullptr) trace->touch(edges_base + 2 * i);
          if (labels[e.u] != kNoLabel && labels[e.v] == kNoLabel)
            prop[e.v] = min_vertex(prop[e.v], labels[e.u]);
          if (labels[e.v] != kNoLabel && labels[e.u] == kNoLabel)
            prop[e.u] = min_vertex(prop[e.u], labels[e.v]);
        }
        // Labeled entries are identical on all ranks and only unlabeled
        // entries are proposed lower, so the min-reduce freezes the former
        // and commits the first arrival for the latter.
        prop = comm.all_reduce_vector(prop, min_vertex);
        labels.swap(prop);
        ++round;
      }
      nc = graph::normalize_labels(labels);
    }

    if (give_up || nc == ns) {
      // No contraction progress (every cluster was a singleton) or the
      // level cap tripped: finish the remainder at the root. W.h.p. unused
      // — a redraw at the next level would almost surely make progress —
      // but it bounds the worst case like the sampling kernel's valve.
      const trace::Span finish_span = ctx.span("ldd_finish", ns, edges_left);
      const std::vector<WeightedEdge> rest = graph.gather(comm);
      std::vector<Vertex> mapping;
      Vertex components = 0;
      if (comm.rank() == 0) {
        seq::UnionFind dsu(ns, trace);
        for (const WeightedEdge& e : rest) dsu.unite(e.u, e.v);
        mapping = dsu.labels();
        components = graph::normalize_labels(mapping);
      }
      comm.broadcast(mapping);
      components = comm.broadcast_value(components);
      for (Vertex v = 0; v < n0; ++v) comp[v] = mapping[comp[v]];
      graph.local().clear();
      ns = components;
      break;
    }

    // Contract: relabel edges into the quotient, drop intra-cluster loops.
    std::vector<WeightedEdge>& mine = graph.local();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const Vertex u = labels[mine[i].u];
      const Vertex v = labels[mine[i].v];
      if (u == v) continue;
      mine[kept++] = WeightedEdge{u, v, mine[i].weight};
    }
    mine.resize(kept);
    for (Vertex v = 0; v < n0; ++v) comp[v] = labels[comp[v]];
    ns = nc;
    graph.set_vertex_count(ns);
    edges_left = graph.global_edge_count(comm);
  }

  result.labels = std::move(comp);
  result.components = ns;
  result.iterations = level;
  consume_graph(graph, ns);
  return result;
}

}  // namespace camc::core
