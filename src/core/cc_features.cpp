#include "core/cc_features.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace camc::core {

using graph::Vertex;
using graph::WeightedEdge;

namespace {

constexpr Vertex kUnreached = std::numeric_limits<Vertex>::max();

Vertex min_vertex(Vertex a, Vertex b) noexcept { return a < b ? a : b; }

}  // namespace

CcFeatures probe_cc_features(const Context& ctx,
                             const graph::DistributedEdgeArray& graph,
                             const CcProbeOptions& options) {
  const bsp::Comm& comm = ctx.comm;
  CcFeatures features;
  features.n = graph.vertex_count();
  if (features.n == 0) return features;
  const trace::Span all = ctx.span("cc_probe", features.n);

  const std::vector<WeightedEdge>& local = graph.local();

  // Degrees: one O(n)-word sum all-reduce. Self-loops count twice; the
  // probe only needs the shape, not exactness.
  std::vector<Vertex> degree(features.n, 0);
  Vertex source = 0;
  {
    const trace::Span span = ctx.span("probe_degrees", local.size());
    for (const WeightedEdge& e : local) {
      ++degree[e.u];
      ++degree[e.v];
    }
    degree = comm.all_reduce_vector(
        degree, [](Vertex a, Vertex b) noexcept { return a + b; });
    Vertex max_degree = 0;
    std::uint64_t total = 0;
    for (Vertex v = 0; v < features.n; ++v) {
      total += degree[v];
      if (degree[v] > max_degree) {
        max_degree = degree[v];
        source = v;  // deterministic argmax: smallest id wins ties
      }
    }
    features.m = total / 2;
    features.avg_degree =
        static_cast<double>(total) / static_cast<double>(features.n);
    features.degree_skew =
        features.avg_degree > 0.0
            ? static_cast<double>(max_degree) / features.avg_degree
            : 0.0;
  }
  if (features.m == 0) return features;

  // Pseudo-diameter: replicated BFS from the max-degree vertex with a hard
  // round cap. Closure within the cap gives the eccentricity of `source`
  // restricted to its component; hitting the cap flags a deep graph.
  {
    const trace::Span span = ctx.span("probe_bfs", source,
                                      options.bfs_round_cap);
    std::vector<Vertex> dist(features.n, kUnreached);
    dist[source] = 0;
    bool converged = false;
    for (std::uint32_t round = 1; round <= options.bfs_round_cap; ++round) {
      std::vector<Vertex> prop = dist;
      for (const WeightedEdge& e : local) {
        if (dist[e.u] != kUnreached)
          prop[e.v] = min_vertex(prop[e.v], dist[e.u] + 1);
        if (dist[e.v] != kUnreached)
          prop[e.u] = min_vertex(prop[e.u], dist[e.v] + 1);
      }
      prop = comm.all_reduce_vector(prop, min_vertex);
      if (prop == dist) {
        converged = true;
        break;
      }
      dist = std::move(prop);
      features.pseudo_diameter = round;
    }
    features.diameter_capped = !converged;
  }
  return features;
}

CcFeatures probe_cc_features_cheap(const Context& ctx,
                                   const graph::DistributedEdgeArray& graph) {
  // Zero communication: the fitted table branches on n alone, and n is
  // replicated. (Local edge counts differ per rank, so any m-dependent
  // branch here would need a collective — measured at ~10% of an entire
  // afforest run on the smallest benchmarked family, which is exactly the
  // overhead budget kAuto has to stay inside.) m stays 0 = "not probed".
  CcFeatures features;
  features.n = graph.vertex_count();
  if (features.n == 0) return features;
  const trace::Span all = ctx.span("cc_probe", features.n);
  return features;
}

CcEngine select_cc_engine(const CcFeatures& features) noexcept {
  // Crossover table fitted from the engines-by-families benchmark matrix
  // (EXPERIMENTS.md "CC engine portfolio crossover"; bench_fig3_cc_strong
  // --json, p = 4). What the measurements showed:
  //  * Afforest won or tied every benchmarked family — ER (3.1x over
  //    sampling), BA (2.1x), RMAT (1.3x), rewired WS (1.1x), and a dead
  //    tie with sampling on the deep WS ring. Its sampled neighbor rounds
  //    settle the bulk of the vertices for one bounded root union-find,
  //    and the skip-settled final gather ships almost nothing on every
  //    family tried, heavy-tailed or not.
  //  * The pre-fit hypotheses did not survive contact: FastSV never beat
  //    Afforest on near-regular graphs (its per-round O(n)-word reduces
  //    dominate), and deep graphs did not favor sampling — Afforest's
  //    cost is diameter-independent, so the BFS pseudo-diameter carries
  //    no decision weight at these scales. The full probe keeps
  //    measuring it for the fitting loop; the table ignores it.
  //  * Sampling remains the choice below the smallest benchmarked size,
  //    where its single gather is optimal and the paper's O(1)-superstep
  //    guarantee costs nothing. The branch reads only n so the dispatch
  //    probe needs no communication; edgeless inputs cost Afforest a few
  //    empty gathers, which is noise at any n the floor admits.
  if (features.n < 256) return CcEngine::kSampling;
  return CcEngine::kAfforest;
}

}  // namespace camc::core
