#pragma once

// Communication-avoiding sparsification (§3.1) — the key common step of all
// three algorithms, implemented in O(1) supersteps.
//
// Weighted path (used by the exact minimum cut): (1) gather each rank's
// total slice weight W_i at the root; (2) the root draws, for each of the s
// sample positions, the rank it comes from (probability W_i / sum W) and
// scatters the per-rank counts; (3) each rank draws its count of edges from
// its slice with probability w_i(e)/W_i and the samples are gathered at the
// root; (4) the root applies a uniform random permutation. Lemma 3.1: every
// position of the resulting array holds edge e with probability
// w(e) / sum(w), independently.
//
// Unweighted fast path (§3.2, "crucial in practice"): skips the multinomial
// round entirely — each rank oversamples ~(1 + delta) * expected count from
// its own slice (Chernoff bounds the shortfall probability), or contributes
// its whole slice when the expectation is tiny.

#include <cstdint>
#include <vector>

#include "bsp/comm.hpp"
#include "cachesim/session.hpp"
#include "graph/dist_edge_array.hpp"
#include "graph/edge.hpp"
#include "rng/philox.hpp"
#include "rng/weighted_sampler.hpp"
#include "trace/context.hpp"

namespace camc::core {

using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

struct SparsifyOptions {
  /// Which local sampler the ranks use; the ablation benchmark compares.
  rng::SamplerKind sampler = rng::SamplerKind::kAlias;
  /// Optional cache-trace hook: each drawn edge touches
  /// trace_base + 2 * index (two words per edge record). May be null.
  cachesim::Session* trace = nullptr;
  std::uint64_t trace_base = 0;
};

/// Collective. Returns the permuted weighted sample of size `s` at `root`
/// (empty elsewhere). `gen` must be an independent stream per rank.
/// Returns an empty sample when the graph has no edges.
std::vector<WeightedEdge> sparsify_weighted(const bsp::Comm& comm,
                                            const graph::DistributedEdgeArray& graph,
                                            std::uint64_t s, rng::Philox& gen,
                                            const SparsifyOptions& options = {},
                                            int root = 0);

/// Context overload: identical sampling (randomness comes from `gen`, not
/// the Context), plus a "sparsify" trace span over the collective.
inline std::vector<WeightedEdge> sparsify_weighted(
    const Context& ctx, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen, const SparsifyOptions& options = {},
    int root = 0) {
  const trace::Span span = ctx.span("sparsify", s);
  return sparsify_weighted(ctx.comm, graph, s, gen, options, root);
}

struct UnweightedSparsifyOptions {
  /// Oversampling slack (0 < delta < 1).
  double delta = 0.5;
  /// Slices whose expected contribution is below
  /// (9 ln n) / delta^2 are included wholesale (the paper's threshold).
  double small_slice_factor = 9.0;
  /// Optional cache-trace hook, as in SparsifyOptions.
  cachesim::Session* trace = nullptr;
  std::uint64_t trace_base = 0;
};

/// Collective. Uniform edge sample of expected size >= s gathered at
/// `root`. Weights are ignored (connected components do not need them).
std::vector<WeightedEdge> sparsify_unweighted(
    const bsp::Comm& comm, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen,
    const UnweightedSparsifyOptions& options = {}, int root = 0);

/// Context overload, traced as "sparsify_unweighted".
inline std::vector<WeightedEdge> sparsify_unweighted(
    const Context& ctx, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen,
    const UnweightedSparsifyOptions& options = {}, int root = 0) {
  const trace::Span span = ctx.span("sparsify_unweighted", s);
  return sparsify_unweighted(ctx.comm, graph, s, gen, options, root);
}

/// Collective (one all-reduce for the global edge count); the sample stays
/// distributed — this rank's slice is returned. Used by the §3.2 remark's
/// extension where the per-iteration component computation itself runs in
/// parallel instead of at the root.
std::vector<WeightedEdge> sparsify_unweighted_local(
    const bsp::Comm& comm, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen,
    const UnweightedSparsifyOptions& options = {});

/// Context overload, traced as "sparsify_unweighted".
inline std::vector<WeightedEdge> sparsify_unweighted_local(
    const Context& ctx, const graph::DistributedEdgeArray& graph,
    std::uint64_t s, rng::Philox& gen,
    const UnweightedSparsifyOptions& options = {}) {
  const trace::Span span = ctx.span("sparsify_unweighted", s);
  return sparsify_unweighted_local(ctx.comm, graph, s, gen, options);
}

}  // namespace camc::core
