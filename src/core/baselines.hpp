#pragma once

// Parallel connected-components baselines the paper compares against
// (Figure 3, Figure 4c):
//
// * bsp_sv_components — Shiloach-Vishkin-style hooking + pointer jumping on
//   a replicated label array: O(log n) supersteps and O((n+m) log n) work,
//   the profile the paper quotes for the Parallel BGL implementation [14].
//
// * async_label_propagation — lock-free asynchronous min-label propagation
//   over a genuinely shared atomic label array, modeling the Galois
//   shared-memory baseline's execution style. This path bypasses the BSP
//   collectives by design (Galois is not a BSP system); it is only
//   meaningful with ranks-as-threads in one address space.

#include <atomic>
#include <cstdint>
#include <vector>

#include "bsp/comm.hpp"
#include "cachesim/session.hpp"
#include "graph/dist_edge_array.hpp"
#include "graph/edge.hpp"

namespace camc::core {

struct BspSvOptions {
  std::uint32_t max_rounds = 200;  ///< > log2(n) for any feasible n
  cachesim::Session* trace = nullptr;
};

struct BspSvResult {
  std::vector<graph::Vertex> labels;  ///< dense, replicated
  graph::Vertex components = 0;
  std::uint32_t rounds = 0;
};

/// Collective. Does not modify the edge array.
BspSvResult bsp_sv_components(const bsp::Comm& comm,
                              const graph::DistributedEdgeArray& graph,
                              const BspSvOptions& options = {});

struct AsyncCcSharedState {
  /// Shared label array; callers construct it once (size n) before the SPMD
  /// region and pass the same object to every rank.
  std::vector<std::atomic<graph::Vertex>> labels;

  explicit AsyncCcSharedState(graph::Vertex n) : labels(n) {
    for (graph::Vertex v = 0; v < n; ++v)
      labels[v].store(v, std::memory_order_relaxed);
  }
};

struct AsyncCcResult {
  std::vector<graph::Vertex> labels;  ///< dense (computed after convergence)
  graph::Vertex components = 0;
  std::uint32_t sweeps = 0;  ///< this rank's passes over its slice
};

/// SPMD over the same shared state: each rank relaxes its local edge slice
/// (label[u], label[v] <- min of the two transitive labels) until a global
/// sweep makes no change. Barriers are used only to detect termination.
AsyncCcResult async_label_propagation(const bsp::Comm& comm,
                                      const graph::DistributedEdgeArray& graph,
                                      AsyncCcSharedState& shared,
                                      cachesim::Session* trace = nullptr);

}  // namespace camc::core
