#pragma once

// Communication-avoiding exact minimum cut (§4).
//
// The algorithm runs t = Theta((n^2 / m) log^2 n) trials and keeps the
// smallest cut found. A trial is:
//
//   1. Eager Step — random contraction to ceil(sqrt(m)) + 1 vertices by
//      Iterated Sampling on the sparse representation (§4.2): sparsify
//      (§3.1) -> prefix selection at the root -> sparse bulk edge
//      contraction (§4.1), repeated O(1) times w.h.p.
//   2. Recursive Step — communication-avoiding Recursive Contraction on the
//      dense representation (§4.3): contract to ceil(a / sqrt 2) + 1 via
//      iterated sampling on the distributed adjacency matrix, split the
//      processor group in half, recurse on both copies; a single remaining
//      rank finishes with sequential (CO) Karger-Stein.
//
// Trial scheduling (§4, Details): with p <= t the graph is replicated and
// every rank runs its share of trials sequentially (their results are
// identical for every p, given the same seed); with p > t the ranks split
// into t groups, each running one trial in parallel.
//
// The returned cut is minimum w.h.p.; all trials find all minimum cuts
// w.h.p. per Lemma 4.3 when the trial count is derived from the success
// probability below.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bsp/comm.hpp"
#include "graph/dist_edge_array.hpp"
#include "graph/edge.hpp"
#include "rng/philox.hpp"
#include "seq/stoer_wagner.hpp"
#include "trace/context.hpp"

namespace camc::core {

// All entrypoints take a camc::Context carrying the cross-cutting state
// (comm, seed, recovery attempt, trace sink — see trace/context.hpp);
// MinCutOptions keeps only the algorithm-shape knobs. The comm-first
// shims that briefly bridged the Context transition are gone — wrap the
// comm in a Context at the call site.

struct MinCutOptions {
  /// Probability that the result is an exact minimum cut.
  double success_probability = 0.9;
  /// Scales the derived trial count (ablations; < 1 trades certainty for
  /// speed exactly like lowering success_probability).
  double trial_multiplier = 1.0;
  /// Override the trial count entirely when nonzero (tests, model fits).
  std::uint32_t forced_trials = 0;
  /// Iterated-sampling sample size is n_cur^(1 + sigma).
  double sigma = 0.2;
  /// Recursive Step leaf: groups of one rank — or matrices at most this
  /// large — are solved with sequential Karger-Stein.
  graph::Vertex leaf_size = 64;
  /// Whether to reconstruct one side of the best cut (costs an extra
  /// O(n)-volume round at the end).
  bool want_side = true;
  /// Safety cap on trials.
  std::uint32_t max_trials = 1u << 20;
};

struct MinCutOutcome {
  graph::Weight value = 0;
  /// One side of the best cut in original vertex ids (when want_side).
  std::vector<graph::Vertex> side;
  bool side_valid = false;
  std::uint32_t trials = 0;
  bool used_distributed_trials = false;
};

/// Trial count t for the options' success target (Lemma 2.1 survival to
/// sqrt(m) vertices times the Recursive Contraction success rate).
std::uint32_t min_cut_trial_count(graph::Vertex n, std::uint64_t m,
                                  const MinCutOptions& options = {});

/// Collective over ctx.comm. Does not modify the input array. Randomness
/// derives from (ctx.seed, ctx.attempt); ctx.attempt is folded into every
/// Philox stream so a recovery retry draws fresh, independent randomness
/// while attempt 0 stays bit-identical to the pre-resilience streams
/// (pinned by the bsp_counter_invariance_test goldens).
MinCutOutcome min_cut(const Context& ctx,
                      const graph::DistributedEdgeArray& graph,
                      const MinCutOptions& options = {});

/// Test-only fault injection: when enabled, sequential_min_cut_trial drops
/// the last input edge (an off-by-one in the trial's edge range). Used by
/// camc_fuzz --inject-bug to prove the differential fuzzer detects and
/// shrinks a real class of bug; never enabled outside that harness.
void set_sequential_trial_fault_for_testing(bool enabled);

/// One fully sequential trial (Eager Step + sequential Recursive Step) —
/// also the p = 1 algorithm measured in Figures 8 and 9. Exposed for tests
/// and the instrumented (cache-traced) variant. The Context supplies only
/// the trace sink here — randomness comes from the caller's `gen`.
seq::CutResult sequential_min_cut_trial(const Context& ctx, graph::Vertex n,
                                        std::span<const graph::WeightedEdge> edges,
                                        const MinCutOptions& options,
                                        rng::Philox& gen);

/// Sequential full algorithm: `trials` sequential trials, best kept.
/// Accepts a comm-less Context (seed + trace sink).
seq::CutResult sequential_min_cut(const Context& ctx, graph::Vertex n,
                                  std::span<const graph::WeightedEdge> edges,
                                  const MinCutOptions& options = {});

/// All distinct minimum cuts (Lemma 4.3: the trials find every minimum cut
/// w.h.p. when the trial count targets the success probability). Each cut
/// is reported once, as the sorted side not containing vertex 0; the
/// number of distinct cuts kept is capped by `max_cuts`.
struct AllMinCutsResult {
  graph::Weight value = 0;
  std::vector<std::vector<graph::Vertex>> cuts;
  std::uint32_t trials = 0;
  bool truncated = false;  ///< hit max_cuts
};

AllMinCutsResult all_min_cuts(const Context& ctx, graph::Vertex n,
                              std::span<const graph::WeightedEdge> edges,
                              const MinCutOptions& options = {},
                              std::size_t max_cuts = 64);

/// Minimum cut in the style of the previous BSP algorithm [4] — Table 1's
/// first row, implemented as the comparison baseline: no Eager Step, no
/// trial groups, and round-by-round contraction sampling (O(a) samples per
/// superstep instead of the batched a^(1+sigma)). Each of the
/// Theta(log^2 n) runs performs full Recursive Contraction of the whole
/// graph across all p ranks, so supersteps grow by log factors where the
/// communication-avoiding algorithm stays O(log(pm/n^2)) — the empirical
/// counterpart of Table 1 regenerated by bench_table1.
struct BaselineMinCutOutcome {
  graph::Weight value = 0;
  std::uint32_t runs = 0;
};

BaselineMinCutOutcome min_cut_previous_bsp(const Context& ctx,
                                           const graph::DistributedEdgeArray& graph,
                                           const MinCutOptions& options = {});

}  // namespace camc::core
