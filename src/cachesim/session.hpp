#pragma once

// A tracing session ties together the simulated cache, a virtual address
// allocator for traced arrays, and an operation counter.
//
// The operation counter is the stand-in for the "completed instructions"
// hardware counter in the paper; Instructions-per-Miss (IPM, Figure 8) is
// reported as ops() / misses().

#include <cstdint>
#include <memory>
#include <optional>

#include "cachesim/cache.hpp"

namespace camc::cachesim {

class Session {
 public:
  /// Default geometry loosely mirrors the paper's testbed LLC
  /// (45 MiB shared, 64-byte lines) scaled down alongside the inputs:
  /// M = 2^18 words (2 MiB), B = 8 words (64 bytes).
  explicit Session(std::uint64_t capacity_words = 1ull << 18,
                   std::uint64_t block_words = 8)
      : cache_(capacity_words, block_words) {}

  IdealCache& cache() noexcept { return cache_; }
  const IdealCache& cache() const noexcept { return cache_; }

  /// Reserve `words` words of virtual address space, block-aligned so that
  /// distinct arrays never share a cache block.
  std::uint64_t allocate(std::uint64_t words) {
    const std::uint64_t b = cache_.block_words();
    next_address_ = (next_address_ + b - 1) / b * b;
    const std::uint64_t base = next_address_;
    next_address_ += words;
    return base;
  }

  void touch(std::uint64_t word_address) {
    ++ops_;
    cache_.access(word_address);
  }

  /// Batched sequential access: `count` words starting at `word_address`,
  /// counted as `count` operations but simulated per block. Equivalent to
  /// `count` consecutive touch() calls for scan patterns, at 1/B the cost.
  void touch_range(std::uint64_t word_address, std::uint64_t count) {
    ops_ += count;
    cache_.access_range(word_address, count);
  }

  /// Record `count` pure-compute operations (no memory traffic).
  void add_ops(std::uint64_t count) noexcept { ops_ += count; }

  std::uint64_t ops() const noexcept { return ops_; }
  std::uint64_t misses() const noexcept { return cache_.misses(); }

  /// Instructions-per-miss; infinity-free: returns ops when misses == 0.
  double ipm() const noexcept {
    return misses() == 0 ? static_cast<double>(ops())
                         : static_cast<double>(ops()) / misses();
  }

 private:
  IdealCache cache_;
  std::uint64_t next_address_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace camc::cachesim
