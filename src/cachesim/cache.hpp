#pragma once

// Ideal-cache simulator for the Cache-Oblivious model (Frigo et al.).
//
// The paper analyzes cache misses in the CO model: a single fully
// associative cache of M words organized in blocks of B words. Bounds
// proven for LRU are within a constant factor of the optimal replacement
// the model assumes, so we simulate LRU. This module is the stand-in for
// the PAPI LLC-miss hardware counters used in the paper's experiments
// (Figures 4, 8, 9): algorithms run against `Traced<T>` arrays and every
// element access is fed through the simulated cache.
//
// Implementation: intrusive doubly-linked LRU list over a flat node pool,
// with a direct-mapped block -> node table (the traced virtual address
// space is dense, so the table stays small). O(1) per access with small
// constants — the simulator is itself on benchmark hot paths.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace camc::cachesim {

/// Fully associative LRU cache over a word-addressed virtual address space.
class IdealCache {
 public:
  /// `capacity_words` = M, `block_words` = B, both in 8-byte words.
  /// Requires block_words >= 1 and capacity_words >= block_words.
  IdealCache(std::uint64_t capacity_words, std::uint64_t block_words)
      : block_words_(block_words),
        capacity_blocks_(block_words > 0 ? capacity_words / block_words : 0) {
    if (block_words == 0 || capacity_blocks_ == 0)
      throw std::invalid_argument("IdealCache: M must hold at least one block");
    nodes_.reserve(capacity_blocks_);
  }

  /// Touch one word at `word_address`; counts a hit or a miss.
  void access(std::uint64_t word_address) {
    touch_block(word_address / block_words_);
  }

  /// Touch `count` consecutive words starting at `word_address`.
  void access_range(std::uint64_t word_address, std::uint64_t count) {
    if (count == 0) return;
    const std::uint64_t first = word_address / block_words_;
    const std::uint64_t last = (word_address + count - 1) / block_words_;
    for (std::uint64_t block = first; block <= last; ++block)
      touch_block(block);
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  std::uint64_t block_words() const noexcept { return block_words_; }
  std::uint64_t capacity_words() const noexcept {
    return capacity_blocks_ * block_words_;
  }

  /// Drop all cached blocks (the artifact's "pointer chase" between trials,
  /// used to stop one measurement from warming the next).
  void flush() {
    for (const Node& node : nodes_) table_[node.block] = kAbsent;
    nodes_.clear();
    head_ = tail_ = kAbsent;
  }

  void reset_counters() noexcept { hits_ = misses_ = 0; }

 private:
  static constexpr std::int32_t kAbsent = -1;

  struct Node {
    std::uint64_t block;
    std::int32_t prev;
    std::int32_t next;
  };

  void touch_block(std::uint64_t block) {
    if (block >= table_.size()) table_.resize(block + block / 2 + 64, kAbsent);
    const std::int32_t node = table_[block];
    if (node != kAbsent) {
      ++hits_;
      move_to_front(node);
      return;
    }
    ++misses_;
    insert_front(block);
  }

  void unlink(std::int32_t node) {
    Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.prev != kAbsent)
      nodes_[static_cast<std::size_t>(n.prev)].next = n.next;
    else
      head_ = n.next;
    if (n.next != kAbsent)
      nodes_[static_cast<std::size_t>(n.next)].prev = n.prev;
    else
      tail_ = n.prev;
  }

  void push_front(std::int32_t node) {
    Node& n = nodes_[static_cast<std::size_t>(node)];
    n.prev = kAbsent;
    n.next = head_;
    if (head_ != kAbsent) nodes_[static_cast<std::size_t>(head_)].prev = node;
    head_ = node;
    if (tail_ == kAbsent) tail_ = node;
  }

  void move_to_front(std::int32_t node) {
    if (head_ == node) return;
    unlink(node);
    push_front(node);
  }

  void insert_front(std::uint64_t block) {
    std::int32_t node;
    if (nodes_.size() < capacity_blocks_) {
      node = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(Node{0, kAbsent, kAbsent});
    } else {
      node = tail_;  // evict LRU in place
      table_[nodes_[static_cast<std::size_t>(node)].block] = kAbsent;
      unlink(node);
    }
    nodes_[static_cast<std::size_t>(node)].block = block;
    push_front(node);
    table_[block] = node;
  }

  std::uint64_t block_words_;
  std::uint64_t capacity_blocks_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::int32_t head_ = kAbsent;
  std::int32_t tail_ = kAbsent;
  std::vector<Node> nodes_;
  std::vector<std::int32_t> table_;  // block -> node, direct-mapped
};

}  // namespace camc::cachesim
