#pragma once

// Traced arrays: std::vector-backed storage whose element accesses are fed
// through a cachesim::Session. Constructed with a null session they are a
// plain array with a single predictable branch per access, so the same
// algorithm code serves both wall-clock benchmarks (untraced) and
// cache-miss measurements (traced).

#include <cstdint>
#include <vector>

#include "cachesim/session.hpp"

namespace camc::cachesim {

template <class T>
class Traced {
 public:
  Traced() = default;

  /// An array of `count` elements; `session` may be null (untraced).
  explicit Traced(std::size_t count, Session* session = nullptr,
                  const T& init = T{})
      : session_(session), data_(count, init) {
    if (session_ != nullptr)
      base_ = session_->allocate(words_for(count));
  }

  /// Wraps existing contents (copies them into traced storage).
  Traced(std::vector<T> contents, Session* session)
      : session_(session), data_(std::move(contents)) {
    if (session_ != nullptr)
      base_ = session_->allocate(words_for(data_.size()));
  }

  T& operator[](std::size_t i) {
    note(i);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    note(i);
    return data_[i];
  }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Untraced escape hatch for setup/teardown code that should not count.
  std::vector<T>& raw() noexcept { return data_; }
  const std::vector<T>& raw() const noexcept { return data_; }

 private:
  static std::uint64_t words_for(std::size_t count) noexcept {
    constexpr std::size_t kWordBytes = 8;
    return (count * sizeof(T) + kWordBytes - 1) / kWordBytes;
  }

  void note(std::size_t i) const {
    if (session_ != nullptr)
      session_->touch(base_ + i * sizeof(T) / 8);
  }

  Session* session_ = nullptr;
  std::uint64_t base_ = 0;
  std::vector<T> data_;
};

}  // namespace camc::cachesim
