#include "store/store.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "graph/fingerprint.hpp"

namespace camc::store {

namespace {

/// Hard bound on any single count field, far above real artifacts but
/// small enough that a corrupt count can never drive a pathological
/// allocation before the remaining-bytes check trips.
constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 40;

std::string hex16(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
  return buffer;
}

constexpr char kZeroPad[8] = {0, 0, 0, 0, 0, 0, 0, 0};

}  // namespace

const char* artifact_kind_name(ArtifactKind kind) noexcept {
  switch (kind) {
    case ArtifactKind::kGraph: return "graph";
    case ArtifactKind::kCcLabeling: return "cc";
    case ArtifactKind::kCertificate: return "cert";
    case ArtifactKind::kContraction: return "contraction";
    case ArtifactKind::kResultSet: return "results";
  }
  return "unknown";
}

const char* store_errc_name(StoreErrc code) noexcept {
  switch (code) {
    case StoreErrc::kCannotOpen: return "cannot-open";
    case StoreErrc::kTruncated: return "truncated";
    case StoreErrc::kBadMagic: return "bad-magic";
    case StoreErrc::kBadVersion: return "bad-version";
    case StoreErrc::kBadKind: return "bad-kind";
    case StoreErrc::kBadCrc: return "bad-crc";
    case StoreErrc::kFingerprintMismatch: return "fingerprint-mismatch";
    case StoreErrc::kBadPayload: return "bad-payload";
    case StoreErrc::kWriteFailed: return "write-failed";
  }
  return "unknown";
}

StoreError::StoreError(StoreErrc code, std::string path,
                       const std::string& detail)
    : std::runtime_error("store: " + std::string(store_errc_name(code)) +
                         ": " + detail + " (" + path + ")"),
      code_(code),
      path_(std::move(path)) {}

std::uint64_t crc64(const void* data, std::size_t bytes,
                    std::uint64_t crc) noexcept {
  // CRC-64/XZ: reflected ECMA-182 polynomial, one table built on first use.
  static const auto table = [] {
    std::array<std::uint64_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t value = i;
      for (int bit = 0; bit < 8; ++bit)
        value = (value >> 1) ^ ((value & 1) ? 0xC96C5795D7870F42ull : 0);
      t[i] = value;
    }
    return t;
  }();
  const auto* bytes_ptr = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < bytes; ++i)
    crc = table[(crc ^ bytes_ptr[i]) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

// -- Writer ------------------------------------------------------------------

Writer::Writer(const std::string& path, ArtifactKind kind,
               std::uint64_t fingerprint)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw StoreError(StoreErrc::kCannotOpen, path, "cannot open for writing");
  header_.kind = static_cast<std::uint32_t>(kind);
  header_.fingerprint = fingerprint;
  // Placeholder header; finish() seeks back and writes the real one.
  out_.write(reinterpret_cast<const char*>(&header_), sizeof(Header));
  if (!out_) throw StoreError(StoreErrc::kWriteFailed, path, "header write failed");
}

Writer::~Writer() {
  if (!finished_) {
    // Abandoned (an exception unwound past the caller): never leave a
    // half-written file behind for a later reader to trip over.
    out_.close();
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }
}

void Writer::write_raw(const void* data, std::size_t bytes) {
  if (bytes == 0) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) throw StoreError(StoreErrc::kWriteFailed, path_, "payload write failed");
  crc_ = crc64(data, bytes, crc_);
  payload_bytes_ += bytes;
}

void Writer::write_string(const std::string& text) {
  write_pod(static_cast<std::uint64_t>(text.size()));
  write_raw(text.data(), text.size());
  pad_to_alignment();
}

void Writer::pad_to_alignment() {
  const std::size_t tail = payload_bytes_ % 8;
  if (tail != 0) write_raw(kZeroPad, 8 - tail);
}

void Writer::finish() {
  header_.payload_bytes = payload_bytes_;
  header_.payload_crc = crc_;
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header_), sizeof(Header));
  out_.flush();
  // The satellite rule io.cpp also follows: a writer that does not check
  // the stream after flushing turns a full disk into a file the reader
  // rejects much later, far from the cause.
  if (!out_.good())
    throw StoreError(StoreErrc::kWriteFailed, path_, "flush failed");
  out_.close();
  if (out_.fail())
    throw StoreError(StoreErrc::kWriteFailed, path_, "close failed");
  finished_ = true;
}

// -- Reader ------------------------------------------------------------------

Reader::Reader(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreError(StoreErrc::kCannotOpen, path, "cannot open");

  // Stage 1: the header, each field validated before the payload is read.
  if (!in.read(reinterpret_cast<char*>(&header_), sizeof(Header)))
    throw StoreError(StoreErrc::kTruncated, path,
                     "file shorter than the 64-byte header");
  if (header_.magic != kMagic)
    throw StoreError(StoreErrc::kBadMagic, path, "not a camc store file");
  if (header_.version != kFormatVersion)
    throw StoreError(StoreErrc::kBadVersion, path,
                     "format version " + std::to_string(header_.version) +
                         " (this reader speaks " +
                         std::to_string(kFormatVersion) + ")");
  if (header_.kind < static_cast<std::uint32_t>(ArtifactKind::kGraph) ||
      header_.kind > static_cast<std::uint32_t>(ArtifactKind::kResultSet))
    throw StoreError(StoreErrc::kBadKind, path,
                     "unknown artifact kind " + std::to_string(header_.kind));

  // Stage 2: the whole payload, sized exactly as declared, CRC-verified
  // before any typed parse touches it. The declared size is checked
  // against the real file size first — a corrupt header must surface as
  // kTruncated, not as a pathological allocation.
  in.seekg(0, std::ios::end);
  const std::uint64_t available =
      static_cast<std::uint64_t>(in.tellg()) - sizeof(Header);
  in.seekg(static_cast<std::streamoff>(sizeof(Header)));
  if (header_.payload_bytes > available)
    throw StoreError(StoreErrc::kTruncated, path,
                     "payload declares " +
                         std::to_string(header_.payload_bytes) +
                         " bytes, file holds " + std::to_string(available));
  payload_.resize(static_cast<std::size_t>(header_.payload_bytes));
  if (!in.read(payload_.data(),
               static_cast<std::streamsize>(payload_.size())))
    throw StoreError(StoreErrc::kTruncated, path,
                     "payload declares " +
                         std::to_string(header_.payload_bytes) +
                         " bytes, file holds fewer");
  char extra;
  if (in.read(&extra, 1))
    throw StoreError(StoreErrc::kBadPayload, path,
                     "trailing bytes after the declared payload");
  const std::uint64_t crc = crc64(payload_.data(), payload_.size());
  if (crc != header_.payload_crc)
    throw StoreError(StoreErrc::kBadCrc, path,
                     "payload CRC " + hex16(crc) + " != header " +
                         hex16(header_.payload_crc));
}

Reader::Reader(const std::string& path, ArtifactKind expected)
    : Reader(path) {
  if (kind() != expected)
    throw StoreError(StoreErrc::kBadKind, path,
                     std::string("expected a ") + artifact_kind_name(expected) +
                         " artifact, found " + artifact_kind_name(kind()));
}

void Reader::read_raw(void* into, std::size_t bytes) {
  if (bytes == 0) return;  // memcpy from an empty payload's data() is UB
  if (bytes > remaining())
    fail_payload("read of " + std::to_string(bytes) +
                 " bytes overruns the payload");
  std::memcpy(into, payload_.data() + cursor_, bytes);
  cursor_ += bytes;
}

void Reader::skip_alignment() {
  const std::size_t tail = cursor_ % 8;
  if (tail == 0) return;
  char pad[8];
  read_raw(pad, 8 - tail);
  for (std::size_t i = 0; i < 8 - tail; ++i)
    if (pad[i] != 0) fail_payload("nonzero alignment padding");
}

std::string Reader::read_string(std::uint64_t max_bytes) {
  const std::uint64_t length = read_pod<std::uint64_t>();
  if (length > max_bytes)
    fail_payload("string length " + std::to_string(length) +
                 " exceeds limit " + std::to_string(max_bytes));
  if (length > remaining()) fail_payload("string overruns the payload");
  std::string text(static_cast<std::size_t>(length), '\0');
  read_raw(text.data(), text.size());
  skip_alignment();
  return text;
}

void Reader::expect_exhausted() const {
  if (cursor_ != payload_.size())
    fail_payload(std::to_string(payload_.size() - cursor_) +
                 " unparsed payload bytes");
}

void Reader::verify_fingerprint(std::uint64_t recomputed) const {
  if (recomputed != header_.fingerprint)
    throw StoreError(StoreErrc::kFingerprintMismatch, path_,
                     "content fingerprint " + hex16(recomputed) +
                         " != header " + hex16(header_.fingerprint));
}

void Reader::fail_payload(const std::string& detail) const {
  throw StoreError(StoreErrc::kBadPayload, path_, detail);
}

// -- typed artifacts ---------------------------------------------------------

std::uint64_t write_graph(const std::string& path, GraphArtifact& artifact) {
  artifact.fingerprint =
      graph::graph_fingerprint(artifact.n, artifact.edges);
  Writer writer(path, ArtifactKind::kGraph, artifact.fingerprint);
  writer.write_string(artifact.name);
  writer.write_pod(artifact.n);
  writer.write_pod(std::uint32_t{0});  // alignment
  writer.write_vector(artifact.edges);
  writer.finish();
  return artifact.fingerprint;
}

GraphArtifact read_graph(const std::string& path) {
  Reader reader(path, ArtifactKind::kGraph);
  GraphArtifact artifact;
  artifact.name = reader.read_string(/*max_bytes=*/1 << 16);
  artifact.n = reader.read_pod<graph::Vertex>();
  if (reader.read_pod<std::uint32_t>() != 0)
    throw StoreError(StoreErrc::kBadPayload, path, "nonzero pad word");
  artifact.edges = reader.read_vector<graph::WeightedEdge>(kMaxCount);
  reader.expect_exhausted();
  for (const graph::WeightedEdge& edge : artifact.edges)
    if (edge.u >= artifact.n || edge.v >= artifact.n)
      throw StoreError(StoreErrc::kBadPayload, path,
                       "edge endpoint out of range");
  // The CRC already proved the bytes are what was written; recomputing the
  // content fingerprint additionally proves they are the *graph* the
  // header names (a stale or cross-copied file fails here).
  artifact.fingerprint =
      graph::graph_fingerprint(artifact.n, artifact.edges);
  reader.verify_fingerprint(artifact.fingerprint);
  return artifact;
}

void write_cc_labeling(const std::string& path,
                       const CcLabelingArtifact& artifact) {
  Writer writer(path, ArtifactKind::kCcLabeling, artifact.graph_fingerprint);
  writer.write_pod(static_cast<std::uint32_t>(artifact.engine));
  writer.write_pod(artifact.components);
  writer.write_pod(artifact.seed);
  writer.write_pod(artifact.iterations);
  writer.write_pod(std::uint32_t{0});  // alignment
  writer.write_vector(artifact.labels);
  writer.finish();
}

CcLabelingArtifact read_cc_labeling(const std::string& path) {
  Reader reader(path, ArtifactKind::kCcLabeling);
  CcLabelingArtifact artifact;
  artifact.graph_fingerprint = reader.fingerprint();
  const auto engine = reader.read_pod<std::uint32_t>();
  if (engine >= core::kCcEngineCount)
    throw StoreError(StoreErrc::kBadPayload, path,
                     "unknown cc engine " + std::to_string(engine));
  artifact.engine = static_cast<core::CcEngine>(engine);
  artifact.components = reader.read_pod<std::uint32_t>();
  artifact.seed = reader.read_pod<std::uint64_t>();
  artifact.iterations = reader.read_pod<std::uint32_t>();
  if (reader.read_pod<std::uint32_t>() != 0)
    throw StoreError(StoreErrc::kBadPayload, path, "nonzero pad word");
  artifact.labels = reader.read_vector<graph::Vertex>(
      std::numeric_limits<graph::Vertex>::max());
  reader.expect_exhausted();
  if (artifact.components > artifact.labels.size() &&
      !artifact.labels.empty())
    throw StoreError(StoreErrc::kBadPayload, path,
                     "more components than vertices");
  for (const graph::Vertex label : artifact.labels)
    if (label >= artifact.components)
      throw StoreError(StoreErrc::kBadPayload, path,
                       "label out of the dense component range");
  return artifact;
}

void write_certificate(const std::string& path,
                       const CertificateArtifact& artifact) {
  Writer writer(path, ArtifactKind::kCertificate, artifact.graph_fingerprint);
  writer.write_pod(artifact.k);
  writer.write_pod(artifact.rounds);
  writer.write_pod(artifact.n);
  writer.write_vector(artifact.edges);
  writer.finish();
}

CertificateArtifact read_certificate(const std::string& path) {
  Reader reader(path, ArtifactKind::kCertificate);
  CertificateArtifact artifact;
  artifact.graph_fingerprint = reader.fingerprint();
  artifact.k = reader.read_pod<graph::Weight>();
  artifact.rounds = reader.read_pod<std::uint32_t>();
  artifact.n = reader.read_pod<graph::Vertex>();
  artifact.edges = reader.read_vector<graph::WeightedEdge>(kMaxCount);
  reader.expect_exhausted();
  for (const graph::WeightedEdge& edge : artifact.edges)
    if (edge.u >= artifact.n || edge.v >= artifact.n)
      throw StoreError(StoreErrc::kBadPayload, path,
                       "certificate edge endpoint out of range");
  return artifact;
}

void write_contraction(const std::string& path,
                       const ContractionArtifact& artifact) {
  Writer writer(path, ArtifactKind::kContraction, artifact.graph_fingerprint);
  writer.write_pod(artifact.new_n);
  writer.write_pod(artifact.rounds);
  writer.write_pod(artifact.degree_bound);
  writer.write_vector(artifact.mapping);
  writer.finish();
}

ContractionArtifact read_contraction(const std::string& path) {
  Reader reader(path, ArtifactKind::kContraction);
  ContractionArtifact artifact;
  artifact.graph_fingerprint = reader.fingerprint();
  artifact.new_n = reader.read_pod<graph::Vertex>();
  artifact.rounds = reader.read_pod<std::uint32_t>();
  artifact.degree_bound = reader.read_pod<graph::Weight>();
  artifact.mapping = reader.read_vector<graph::Vertex>(
      std::numeric_limits<graph::Vertex>::max());
  reader.expect_exhausted();
  for (const graph::Vertex label : artifact.mapping)
    if (label >= artifact.new_n)
      throw StoreError(StoreErrc::kBadPayload, path,
                       "mapping label out of the contracted range");
  return artifact;
}

std::string artifact_file_name(std::uint64_t fingerprint, ArtifactKind kind) {
  return hex16(fingerprint) + "." + artifact_kind_name(kind) + ".camc";
}

}  // namespace camc::store
