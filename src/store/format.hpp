#pragma once

// camc::store — the on-disk artifact format shared by every persisted
// graph and derived result (docs/USAGE.md "Warm restart", DESIGN.md §2
// Store).
//
// Every store file is
//
//   [ 64-byte header ][ payload, 8-byte aligned fixed-width records ]
//
// and the header carries, in order: an 8-byte magic, the format version,
// the artifact kind, the 64-bit content fingerprint of the graph the
// artifact belongs to (graph/fingerprint.hpp), the payload byte count,
// and a CRC-64 over the payload. Loading is staged, after the OSRM
// FileReader::VerifyFingerprint idiom: (1) the header is read and each
// field validated before a single payload byte is trusted, (2) the
// payload is read whole and its CRC checked against the header, and only
// then (3) typed records are parsed with bounds checks on every count
// field. Any failure at any stage throws StoreError with a machine-
// readable code — a truncated, bit-flipped, or mismatched file is
// rejected with a structured error, never parsed into a partial object.
//
// The layout is deliberately mmap-friendly: the header is exactly 64
// bytes, strings are length-prefixed and padded to 8 bytes, and all
// record types are trivially copyable with fixed width, so a future
// reader can map the payload and cast record spans in place.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace camc::store {

/// Leading 8 bytes of every store file.
inline constexpr std::array<char, 8> kMagic = {'C', 'A', 'M', 'C',
                                               'S', 'T', 'O', 'R'};

/// Bumped on any incompatible layout change; readers reject other values.
inline constexpr std::uint32_t kFormatVersion = 1;

/// What the payload holds. The kind is part of the header so a file can
/// never be parsed as the wrong artifact type.
enum class ArtifactKind : std::uint32_t {
  kGraph = 1,        ///< named edge list (rehydrates svc::GraphStore)
  kCcLabeling = 2,   ///< per-engine component labeling of a graph
  kCertificate = 3,  ///< Nagamochi-Ibaraki sparse k-certificate
  kContraction = 4,  ///< heavy-edge contraction level (preprocess mapping)
  kResultSet = 5,    ///< cached query results (pre-seeds svc::ResultCache)
};

const char* artifact_kind_name(ArtifactKind kind) noexcept;

/// Machine-readable failure class of a store operation. Every reader and
/// writer failure maps to exactly one code; tests assert codes, not
/// message text.
enum class StoreErrc : std::uint8_t {
  kCannotOpen = 0,           ///< open/stat failed
  kTruncated = 1,            ///< file shorter than the header declares
  kBadMagic = 2,             ///< leading bytes are not CAMCSTOR
  kBadVersion = 3,           ///< format version unknown to this reader
  kBadKind = 4,              ///< header kind unknown or not the expected one
  kBadCrc = 5,               ///< payload CRC does not match the header
  kFingerprintMismatch = 6,  ///< content fingerprint disagrees
  kBadPayload = 7,           ///< typed parse failed (counts, bounds, trailing)
  kWriteFailed = 8,          ///< stream went bad while writing / flushing
};

const char* store_errc_name(StoreErrc code) noexcept;

/// Structured store failure: code + offending path + human detail. The
/// what() string contains all three.
class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrc code, std::string path, const std::string& detail);

  StoreErrc code() const noexcept { return code_; }
  const std::string& path() const noexcept { return path_; }

 private:
  StoreErrc code_;
  std::string path_;
};

/// Fixed 64-byte header. Written and read as raw bytes; all fields are
/// little-endian on every platform this repo targets (asserted by the
/// store tests against a committed golden file).
struct Header {
  std::array<char, 8> magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t kind = 0;
  std::uint64_t fingerprint = 0;    ///< graph content fingerprint
  std::uint64_t payload_bytes = 0;  ///< bytes following the header
  std::uint64_t payload_crc = 0;    ///< CRC-64/XZ over the payload
  std::uint64_t reserved[3] = {0, 0, 0};
};
static_assert(sizeof(Header) == 64);

/// CRC-64/XZ (ECMA-182 polynomial, reflected). Incremental: feed chunks
/// with the previous return value as `crc` (start at 0).
std::uint64_t crc64(const void* data, std::size_t bytes,
                    std::uint64_t crc = 0) noexcept;

}  // namespace camc::store
