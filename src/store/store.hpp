#pragma once

// Staged readers and writers over the camc::store format (format.hpp),
// plus the typed artifacts themselves: graphs, per-engine CC labelings,
// sparse certificates, and contraction levels. The svc layer adds the
// result-set artifact on top of the same Writer/Reader (svc/persist.hpp).
//
// Write pipeline: header placeholder → payload records (CRC accumulated
// as bytes are written) → seek back and finalize the header. The stream
// state is checked after every stage and after the final flush, so a full
// disk or failed close is an immediate StoreError{kWriteFailed} with the
// path — never a silently truncated file discovered at load time (the
// same rule graph::write_edge_list_file follows).
//
// Read pipeline (the VerifyFingerprint idiom): header validation →
// whole-payload CRC check → typed parse with bounds checks. Typed readers
// additionally recompute the graph content fingerprint where the payload
// permits and compare it with the header, so even a CRC-consistent file
// written for a different graph is rejected.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "core/cc.hpp"
#include "graph/edge.hpp"
#include "store/format.hpp"

namespace camc::store {

// -- staged low-level pipelines ----------------------------------------------

/// Streaming artifact writer. Usage:
///   Writer w(path, ArtifactKind::kGraph, fingerprint);
///   w.write_pod(...); w.write_vector(...); w.write_string(...);
///   w.finish();  // mandatory; a destructed-unfinished Writer deletes the file
class Writer {
 public:
  Writer(const std::string& path, ArtifactKind kind, std::uint64_t fingerprint);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Appends raw bytes to the payload, folding them into the CRC.
  void write_raw(const void* data, std::size_t bytes);

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_raw(&value, sizeof(T));
  }

  /// u64 element count, then the elements back to back. T must be a
  /// fixed-width record; 8-byte payload alignment is preserved because
  /// every record type used is 4- or 8-byte sized and padded below.
  template <typename T>
  void write_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_pod(static_cast<std::uint64_t>(values.size()));
    write_raw(values.data(), values.size() * sizeof(T));
    pad_to_alignment();
  }

  /// u64 byte length, the bytes, then zero padding to an 8-byte boundary.
  void write_string(const std::string& text);

  /// Finalizes the header (payload size + CRC), flushes, and verifies the
  /// stream survived. Throws StoreError{kWriteFailed} on any failure.
  void finish();

 private:
  void pad_to_alignment();

  std::string path_;
  std::ofstream out_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t crc_ = 0;
  Header header_;
  bool finished_ = false;
};

/// Validated artifact reader. The constructor performs stages 1 and 2
/// (header + CRC); the typed read_* accessors are stage 3 and bounds-check
/// every count against the remaining payload, so a corrupt count field can
/// never trigger a huge allocation or an out-of-bounds read.
class Reader {
 public:
  /// Pass kExpected to reject files of any other kind up front; omit it
  /// (or pass std::nullopt semantics via the 1-arg form) to accept any
  /// valid kind and dispatch on kind().
  explicit Reader(const std::string& path);
  Reader(const std::string& path, ArtifactKind expected);

  ArtifactKind kind() const noexcept {
    return static_cast<ArtifactKind>(header_.kind);
  }
  std::uint64_t fingerprint() const noexcept { return header_.fingerprint; }
  const std::string& path() const noexcept { return path_; }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read_raw(&value, sizeof(T));
    return value;
  }

  /// Reads a u64 count + elements. `max_count` bounds the count before
  /// any allocation (independently of the remaining-bytes check).
  template <typename T>
  std::vector<T> read_vector(std::uint64_t max_count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = read_pod<std::uint64_t>();
    if (count > max_count)
      fail_payload("count " + std::to_string(count) + " exceeds limit " +
                   std::to_string(max_count));
    if (count > remaining() / sizeof(T))
      fail_payload("count " + std::to_string(count) +
                   " overruns the payload");
    std::vector<T> values(static_cast<std::size_t>(count));
    read_raw(values.data(), values.size() * sizeof(T));
    skip_alignment();
    return values;
  }

  std::string read_string(std::uint64_t max_bytes);

  /// Stage-3 epilogue: throws StoreError{kBadPayload} unless the payload
  /// was consumed exactly (trailing garbage rejection).
  void expect_exhausted() const;

  /// Throws StoreError{kFingerprintMismatch} unless the recomputed
  /// content fingerprint equals the header's.
  void verify_fingerprint(std::uint64_t recomputed) const;

  std::uint64_t remaining() const noexcept {
    return payload_.size() - cursor_;
  }

 private:
  void read_raw(void* into, std::size_t bytes);
  void skip_alignment();
  [[noreturn]] void fail_payload(const std::string& detail) const;

  std::string path_;
  Header header_;
  std::vector<char> payload_;
  std::size_t cursor_ = 0;
};

// -- typed artifacts ---------------------------------------------------------

/// A named graph, exactly as svc::GraphStore holds it. `fingerprint` is
/// computed on write and verified (recomputed over the loaded edges) on
/// read, so save→load is bit-identical or it throws.
struct GraphArtifact {
  std::string name;
  graph::Vertex n = 0;
  std::vector<graph::WeightedEdge> edges;
  std::uint64_t fingerprint = 0;  ///< filled by write_graph / read_graph
};

std::uint64_t write_graph(const std::string& path, GraphArtifact& artifact);
GraphArtifact read_graph(const std::string& path);

/// A component labeling produced by one concrete portfolio engine.
struct CcLabelingArtifact {
  std::uint64_t graph_fingerprint = 0;
  core::CcEngine engine = core::CcEngine::kSampling;
  std::uint64_t seed = 0;
  std::uint32_t components = 0;
  std::uint32_t iterations = 0;
  std::vector<graph::Vertex> labels;  ///< dense in [0, components)
};

void write_cc_labeling(const std::string& path,
                       const CcLabelingArtifact& artifact);
CcLabelingArtifact read_cc_labeling(const std::string& path);

/// Nagamochi-Ibaraki sparse k-certificate of a graph (seq/certificate.hpp).
struct CertificateArtifact {
  std::uint64_t graph_fingerprint = 0;
  graph::Weight k = 0;
  std::uint32_t rounds = 0;
  graph::Vertex n = 0;
  std::vector<graph::WeightedEdge> edges;
};

void write_certificate(const std::string& path,
                       const CertificateArtifact& artifact);
CertificateArtifact read_certificate(const std::string& path);

/// Heavy-edge contraction level (core/preprocess.hpp): the vertex mapping
/// plus the bound the preprocessing terminated with.
struct ContractionArtifact {
  std::uint64_t graph_fingerprint = 0;
  graph::Vertex new_n = 0;
  std::uint32_t rounds = 0;
  graph::Weight degree_bound = 0;
  std::vector<graph::Vertex> mapping;  ///< original vertex -> [0, new_n)
};

void write_contraction(const std::string& path,
                       const ContractionArtifact& artifact);
ContractionArtifact read_contraction(const std::string& path);

/// Canonical file name of an artifact: "<16-hex-fingerprint>.<tag>.camc"
/// where tag is "graph", "cc", "cert", "contraction", or "results".
std::string artifact_file_name(std::uint64_t fingerprint, ArtifactKind kind);

}  // namespace camc::store
