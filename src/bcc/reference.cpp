#include "bcc/reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace camc::bcc {

namespace {

constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;

/// Edge-indexed CSR over the non-self-loop edges: Hopcroft-Tarjan must
/// distinguish edge *instances* (a parallel edge to the DFS parent is a
/// back edge, the tree edge is not), so neighbors carry the input index.
struct Adjacency {
  struct Arc {
    graph::Vertex to;
    std::uint32_t edge;
  };
  std::vector<std::size_t> offsets;
  std::vector<Arc> arcs;

  Adjacency(graph::Vertex n, std::span<const graph::WeightedEdge> edges)
      : offsets(static_cast<std::size_t>(n) + 1, 0) {
    if (edges.size() >= kNoBcc)
      throw std::length_error("bcc: edge count exceeds 32-bit index space");
    for (const graph::WeightedEdge& e : edges) {
      if (e.u == e.v) continue;
      ++offsets[e.u + 1];
      ++offsets[e.v + 1];
    }
    for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];
    arcs.resize(offsets.back());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const graph::WeightedEdge& e = edges[i];
      if (e.u == e.v) continue;
      const auto id = static_cast<std::uint32_t>(i);
      arcs[cursor[e.u]++] = {e.v, id};
      arcs[cursor[e.v]++] = {e.u, id};
    }
  }
};

struct Frame {
  graph::Vertex v;
  std::uint32_t parent_edge;  ///< kUnvisited for roots (no edge id matches)
  std::size_t next;           ///< cursor into Adjacency::arcs
};

}  // namespace

BccResult canonicalize_edge_labels(const std::vector<std::uint32_t>& raw,
                                   std::uint32_t raw_count) {
  BccResult out;
  out.edge_labels.assign(raw.size(), kNoBcc);
  std::vector<std::uint32_t> remap(raw_count, kNoBcc);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == kNoBcc) continue;
    std::uint32_t& slot = remap[raw[i]];
    if (slot == kNoBcc) slot = next++;
    out.edge_labels[i] = slot;
  }
  out.bcc_count = next;

  std::vector<std::uint32_t> edge_count(next, 0);
  std::vector<std::uint64_t> first_edge(next, 0);
  for (std::size_t i = 0; i < out.edge_labels.size(); ++i) {
    const std::uint32_t label = out.edge_labels[i];
    if (label == kNoBcc) continue;
    if (edge_count[label]++ == 0) first_edge[label] = i;
  }
  for (std::uint32_t label = 0; label < next; ++label) {
    out.largest_bcc = std::max(out.largest_bcc, edge_count[label]);
    // First-occurrence numbering makes first_edge increasing in label
    // order, so the bridge list comes out ascending for free.
    if (edge_count[label] == 1) out.bridges.push_back(first_edge[label]);
  }
  return out;
}

namespace {

/// Articulation via the block theorem: a vertex is a cut vertex iff its
/// incident (non-self-loop) edges span >= 2 distinct BCC labels.
void fill_articulation(graph::Vertex n,
                       std::span<const graph::WeightedEdge> edges,
                       BccResult& out) {
  std::vector<std::uint32_t> vmin(n, kNoBcc), vmax(n, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::uint32_t label = out.edge_labels[i];
    if (label == kNoBcc) continue;
    for (const graph::Vertex v : {edges[i].u, edges[i].v}) {
      vmin[v] = std::min(vmin[v], label);
      vmax[v] = std::max(vmax[v], label);
    }
  }
  for (graph::Vertex v = 0; v < n; ++v)
    if (vmin[v] != kNoBcc && vmin[v] != vmax[v]) out.articulation.push_back(v);
}

}  // namespace

BccResult biconnected_components_seq(
    graph::Vertex n, std::span<const graph::WeightedEdge> edges) {
  const Adjacency adj(n, edges);
  std::vector<std::uint32_t> disc(n, kUnvisited), low(n, 0);
  std::vector<std::uint32_t> raw(edges.size(), kNoBcc);
  std::uint32_t timer = 0, labels = 0;
  std::vector<std::uint32_t> edge_stack;
  std::vector<Frame> stack;

  for (graph::Vertex root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, kUnvisited, adj.offsets[root]});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < adj.offsets[frame.v + 1]) {
        const auto [w, e] = adj.arcs[frame.next++];
        if (disc[w] == kUnvisited) {
          edge_stack.push_back(e);
          disc[w] = low[w] = timer++;
          stack.push_back({w, e, adj.offsets[w]});
        } else if (e != frame.parent_edge && disc[w] < disc[frame.v]) {
          // Back edge, seen from the descendant side only; a parallel copy
          // of the tree edge lands here, which is what keeps doubled edges
          // out of the bridge set.
          edge_stack.push_back(e);
          low[frame.v] = std::min(low[frame.v], disc[w]);
        }
      } else {
        const Frame done = frame;
        stack.pop_back();
        if (stack.empty()) continue;
        Frame& parent = stack.back();
        low[parent.v] = std::min(low[parent.v], low[done.v]);
        if (low[done.v] >= disc[parent.v]) {
          // done.v's subtree cannot reach above parent.v: everything on the
          // edge stack down to the tree edge (parent.v, done.v) is one BCC.
          const std::uint32_t label = labels++;
          while (true) {
            const std::uint32_t e = edge_stack.back();
            edge_stack.pop_back();
            raw[e] = label;
            if (e == done.parent_edge) break;
          }
        }
      }
    }
  }
  BccResult out = canonicalize_edge_labels(raw, labels);
  fill_articulation(n, edges, out);
  return out;
}

std::vector<std::uint64_t> bridges_seq(
    graph::Vertex n, std::span<const graph::WeightedEdge> edges) {
  const Adjacency adj(n, edges);
  std::vector<std::uint32_t> disc(n, kUnvisited), low(n, 0);
  std::vector<std::uint64_t> out;
  std::uint32_t timer = 0;
  std::vector<Frame> stack;
  for (graph::Vertex root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, kUnvisited, adj.offsets[root]});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < adj.offsets[frame.v + 1]) {
        const auto [w, e] = adj.arcs[frame.next++];
        if (disc[w] == kUnvisited) {
          disc[w] = low[w] = timer++;
          stack.push_back({w, e, adj.offsets[w]});
        } else if (e != frame.parent_edge) {
          low[frame.v] = std::min(low[frame.v], disc[w]);
        }
      } else {
        const Frame done = frame;
        stack.pop_back();
        if (stack.empty()) continue;
        Frame& parent = stack.back();
        low[parent.v] = std::min(low[parent.v], low[done.v]);
        if (low[done.v] > disc[parent.v]) out.push_back(done.parent_edge);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace camc::bcc
