#pragma once

// Sequential biconnectivity reference (Hopcroft-Tarjan).
//
// The canonical output contract shared with the parallel kernel
// (bcc/bcc.hpp): per-edge BCC labels in *input edge order*, renumbered by
// first occurrence, so two partition-equivalent labelings — however the
// underlying spanning forest was chosen — serialize to the same bytes.
// That is what lets the fuzz oracles demand bit-for-bit agreement between
// the reference, and the parallel kernel at every processor count.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace camc::bcc {

/// Label of edges outside every biconnected component (self-loops).
inline constexpr std::uint32_t kNoBcc = 0xFFFFFFFFu;

struct BccResult {
  /// One label per input edge, in input order, dense in [0, bcc_count) and
  /// numbered by first occurrence in input order. Self-loops get kNoBcc.
  std::vector<std::uint32_t> edge_labels;
  std::uint32_t bcc_count = 0;
  /// Edge count of the largest biconnected component (parallel edges each
  /// count — a doubled edge is a 2-edge BCC, not a bridge).
  std::uint32_t largest_bcc = 0;
  /// Cut vertices, ascending. A vertex is an articulation point iff its
  /// incident (non-self-loop) edges span >= 2 distinct BCC labels.
  std::vector<graph::Vertex> articulation;
  /// Input edge indices of bridges, ascending. A bridge is exactly a BCC
  /// with a single edge record.
  std::vector<std::uint64_t> bridges;
  /// Iterations of the skeleton CC (parallel kernel only; 0 here).
  std::uint32_t cc_iterations = 0;
};

/// Hopcroft-Tarjan over an explicit edge-indexed adjacency. O(n + m).
/// Handles multigraphs (a parallel edge is a back edge, never a bridge)
/// and forests (every component is rooted independently).
BccResult biconnected_components_seq(graph::Vertex n,
                                     std::span<const graph::WeightedEdge> edges);

/// Independent bridge finder (DFS low-link with edge-id tracking), used by
/// the oracles to cross-check `BccResult::bridges` against a second
/// derivation. Returns ascending input edge indices.
std::vector<std::uint64_t> bridges_seq(graph::Vertex n,
                                       std::span<const graph::WeightedEdge> edges);

/// Canonical finalization shared by the reference and the parallel kernel:
/// raw per-edge labels (any partition-equivalent numbering, kNoBcc for
/// self-loops, raw values < raw_count) become the label-derived fields of
/// the contract above — edge_labels, bcc_count, largest_bcc, bridges.
/// Articulation needs vertex incidence, which the parallel kernel derives
/// from an all-reduce instead of the edge list; it stays the caller's job.
BccResult canonicalize_edge_labels(const std::vector<std::uint32_t>& raw,
                                   std::uint32_t raw_count);

}  // namespace camc::bcc
