#include "bcc/bcc.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace camc::bcc {

namespace {

using graph::Vertex;
using graph::WeightedEdge;

constexpr std::uint32_t kNoPre = 0xFFFFFFFFu;

/// A spanning-forest candidate. Weights are connectivity-irrelevant, so
/// candidates travel as bare endpoint pairs (half the gather volume).
struct TreeCand {
  Vertex u = 0;
  Vertex v = 0;
};
static_assert(std::is_trivially_copyable_v<TreeCand>);

struct Skeleton {
  std::vector<Vertex> parent;     ///< parent[root] == root
  std::vector<std::uint32_t> pre; ///< preorder, contiguous per tree
  std::vector<std::uint32_t> nd;  ///< subtree size
};

/// Root-side union-find (path halving) over the gathered candidates.
Vertex find_root(std::vector<Vertex>& uf, Vertex v) {
  while (uf[v] != v) {
    uf[v] = uf[uf[v]];
    v = uf[v];
  }
  return v;
}

/// Builds the rooted forest from the surviving candidates and numbers it:
/// iterative DFS per root in vertex order, so (parent, pre, nd) are a
/// deterministic function of the gathered candidate sequence.
Skeleton build_skeleton(Vertex n, const std::vector<TreeCand>& candidates) {
  Skeleton out;
  out.parent.resize(n);
  for (Vertex v = 0; v < n; ++v) out.parent[v] = v;
  std::vector<Vertex> uf = out.parent;

  // Tree adjacency in CSR form; at most n-1 surviving candidates.
  std::vector<TreeCand> tree;
  tree.reserve(n > 0 ? n - 1 : 0);
  for (const TreeCand& cand : candidates) {
    const Vertex ru = find_root(uf, cand.u);
    const Vertex rv = find_root(uf, cand.v);
    if (ru == rv) continue;
    uf[ru] = rv;
    tree.push_back(cand);
  }
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const TreeCand& e : tree) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];
  std::vector<Vertex> adjacency(offsets.back());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const TreeCand& e : tree) {
      adjacency[cursor[e.u]++] = e.v;
      adjacency[cursor[e.v]++] = e.u;
    }
  }

  out.pre.assign(n, kNoPre);
  out.nd.assign(n, 1);
  std::uint32_t timer = 0;
  // (vertex, tree parent) pairs; a vertex is numbered when it is *popped*,
  // which is what makes every subtree a contiguous preorder interval —
  // the invariant all the [pre(v), pre(v) + nd(v)) fence tests rely on.
  std::vector<std::pair<Vertex, Vertex>> stack;
  std::vector<Vertex> order;  // preorder sequence, for the nd fold
  order.reserve(n);
  for (Vertex root = 0; root < n; ++root) {
    if (out.pre[root] != kNoPre) continue;
    stack.emplace_back(root, root);
    while (!stack.empty()) {
      const auto [v, from] = stack.back();
      stack.pop_back();
      if (out.pre[v] != kNoPre) continue;
      out.parent[v] = from;
      out.pre[v] = timer++;
      order.push_back(v);
      for (std::size_t a = offsets[v + 1]; a-- > offsets[v];) {
        const Vertex w = adjacency[a];
        if (out.pre[w] == kNoPre) stack.emplace_back(w, v);
      }
    }
  }
  // Reverse preorder visits every child before its parent.
  for (std::size_t i = order.size(); i-- > 0;) {
    const Vertex v = order[i];
    if (out.parent[v] != v) out.nd[out.parent[v]] += out.nd[v];
  }
  return out;
}

}  // namespace

BccResult biconnected_components(const Context& ctx,
                                 const graph::DistributedEdgeArray& graph,
                                 const BccOptions& options) {
  const bsp::Comm& world = ctx.comm;
  const Vertex n = graph.vertex_count();
  const std::vector<WeightedEdge>& local = graph.local();
  if (n == 0) return {};
  const auto whole = ctx.span("bcc", n, local.size());

  // -- 1. local spanning forests, gathered at the root ----------------------
  std::vector<TreeCand> candidates;
  {
    const auto span = ctx.span("bcc_local_forest");
    std::vector<Vertex> uf(n);
    for (Vertex v = 0; v < n; ++v) uf[v] = v;
    std::vector<TreeCand> mine;
    for (const WeightedEdge& e : local) {
      if (e.u == e.v) continue;
      const Vertex ru = find_root(uf, e.u);
      const Vertex rv = find_root(uf, e.v);
      if (ru == rv) continue;
      uf[ru] = rv;
      mine.push_back({e.u, e.v});
    }
    candidates = world.gather(mine, 0);
  }

  // -- 2. root builds the rooted skeleton, everyone receives it -------------
  Skeleton skeleton;
  {
    const auto span = ctx.span("bcc_skeleton");
    if (world.rank() == 0) skeleton = build_skeleton(n, candidates);
    world.broadcast(skeleton.parent, 0);
    world.broadcast(skeleton.pre, 0);
    world.broadcast(skeleton.nd, 0);
  }
  const std::vector<Vertex>& parent = skeleton.parent;
  const std::vector<std::uint32_t>& pre = skeleton.pre;
  const std::vector<std::uint32_t>& nd = skeleton.nd;

  // -- 3. low/high fence intervals ------------------------------------------
  // Every edge contributes its endpoints' preorders; contributions from the
  // skeleton's own tree edges are provably inert (a vertex x in subtree(w)
  // only ever contributes preorders inside [pre(v), pre(v)+nd(v)) to w's
  // interval, and the escape tests below are strict), so ranks need not
  // know which gathered candidate the root kept.
  std::vector<std::uint32_t> low(n), high(n);
  {
    const auto span = ctx.span("bcc_low_high");
    std::vector<std::uint32_t> cand_low(n, kNoPre), cand_high(n, 0);
    for (const WeightedEdge& e : local) {
      if (e.u == e.v) continue;
      cand_low[e.u] = std::min(cand_low[e.u], pre[e.v]);
      cand_high[e.u] = std::max(cand_high[e.u], pre[e.v]);
      cand_low[e.v] = std::min(cand_low[e.v], pre[e.u]);
      cand_high[e.v] = std::max(cand_high[e.v], pre[e.u]);
    }
    cand_low = world.all_reduce_vector(
        cand_low, [](std::uint32_t a, std::uint32_t b) { return std::min(a, b); });
    cand_high = world.all_reduce_vector(
        cand_high, [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
    // Redundant bottom-up fold on every rank: descending preorder visits
    // children before parents, so one pass suffices — no more communication.
    std::vector<Vertex> by_pre(n);
    for (Vertex v = 0; v < n; ++v) by_pre[pre[v]] = v;
    for (Vertex v = 0; v < n; ++v) {
      low[v] = std::min(pre[v], cand_low[v]);
      high[v] = std::max(pre[v], cand_high[v]);
    }
    for (std::uint32_t i = n; i-- > 0;) {
      const Vertex v = by_pre[i];
      if (parent[v] == v) continue;
      low[parent[v]] = std::min(low[parent[v]], low[v]);
      high[parent[v]] = std::max(high[parent[v]], high[v]);
    }
  }

  // -- 4 + 5. fenced auxiliary graph, named by connected components ---------
  // Aux vertex v <=> tree edge (parent(v), v); roots have no aux vertex but
  // harmlessly occupy singleton slots of the shared vertex space.
  core::CcResult aux_cc;
  {
    const auto span = ctx.span("bcc_skeleton_cc");
    std::vector<WeightedEdge> aux_local;
    for (const WeightedEdge& e : local) {
      if (e.u == e.v) continue;
      const Vertex a = pre[e.u] < pre[e.v] ? e.u : e.v;
      const Vertex b = pre[e.u] < pre[e.v] ? e.v : e.u;
      // Rule (i): a non-tree edge whose far endpoint escapes a's subtree
      // welds the two tree edges below a and b together. (The skeleton's
      // own tree edges never escape, so they add nothing here.)
      if (pre[b] >= pre[a] + nd[a]) aux_local.push_back({a, b, 1});
    }
    // Rule (ii) is a pure function of the replicated skeleton; deal the
    // vertices round-robin so each aux edge is emitted exactly once.
    const auto p = static_cast<std::uint32_t>(world.size());
    const auto r = static_cast<std::uint32_t>(world.rank());
    for (Vertex w = r; w < n; w += p) {
      const Vertex v = parent[w];
      if (v == w || parent[v] == v) continue;
      if (low[w] < pre[v] || high[w] >= pre[v] + nd[v])
        aux_local.push_back({v, w, 1});
    }
    graph::DistributedEdgeArray aux(n, std::move(aux_local));
    core::CcOptions cc_options;
    cc_options.epsilon = options.epsilon;
    cc_options.engine = options.engine;
    aux_cc = core::connected_components(ctx, aux, cc_options);
  }
  const std::vector<Vertex>& comp = aux_cc.labels;

  // -- 6. per-edge labels, canonicalized at the root ------------------------
  BccResult out;
  {
    const auto span = ctx.span("bcc_canonicalize");
    std::vector<std::uint32_t> labels(local.size(), kNoBcc);
    std::vector<std::uint32_t> vmin(n, kNoBcc), vmax(n, 0);
    for (std::size_t i = 0; i < local.size(); ++i) {
      const WeightedEdge& e = local[i];
      if (e.u == e.v) continue;
      // An edge belongs to the BCC of the tree edge above its deeper
      // endpoint (for a welded pair either endpoint gives the same label).
      const Vertex deep = pre[e.u] < pre[e.v] ? e.v : e.u;
      labels[i] = static_cast<std::uint32_t>(comp[deep]);
      vmin[e.u] = std::min(vmin[e.u], labels[i]);
      vmax[e.u] = std::max(vmax[e.u], labels[i]);
      vmin[e.v] = std::min(vmin[e.v], labels[i]);
      vmax[e.v] = std::max(vmax[e.v], labels[i]);
    }
    // scatter dealt contiguous chunks, so the rank-order gather restores
    // global input order — the order canonicalization is defined over.
    const std::vector<std::uint32_t> all_labels = world.gather(labels, 0);
    vmin = world.all_reduce_vector(
        vmin, [](std::uint32_t a, std::uint32_t b) { return std::min(a, b); });
    vmax = world.all_reduce_vector(
        vmax, [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
    if (world.rank() == 0) {
      out = canonicalize_edge_labels(all_labels, aux_cc.components);
      for (Vertex v = 0; v < n; ++v)
        if (vmin[v] != kNoBcc && vmin[v] != vmax[v]) out.articulation.push_back(v);
      out.cc_iterations = aux_cc.iterations;
    }
  }
  return out;
}

}  // namespace camc::bcc
