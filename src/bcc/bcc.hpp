#pragma once

// camc::bcc — parallel biconnected components, bridges, and articulation
// points over the repo's distributed CC + spanning-forest machinery,
// following the skeleton decomposition of Dong et al. (arXiv:2301.01356)
// in the Tarjan-Vishkin auxiliary-graph formulation:
//
//   1. local spanning forests per rank (union-find over the local slice),
//      candidates gathered at the root — <= p(n-1) edges, the same
//      communication shape as the paper's iterated-sampling CC round;
//   2. the root builds one rooted global spanning forest and broadcasts
//      (parent, preorder, subtree size) — the *skeleton*;
//   3. low/high subtree intervals: per-rank min/max preorder contributions
//      from the non-skeleton edges, one all-reduce, then a redundant (and
//      therefore communication-free) bottom-up fold on every rank;
//   4. a *fenced* auxiliary graph on the non-root vertices — vertex v
//      stands for the tree edge (parent(v), v); a non-tree edge {v,w}
//      (pre(v) < pre(w)) links v and w iff w escapes v's subtree, and a
//      tree edge (v, w) links v and w iff w's subtree escapes v's fence
//      (low(w) < pre(v) or high(w) >= pre(v) + nd(v));
//   5. connected components of the auxiliary graph name the BCCs — the
//      existing core::connected_components portfolio runs unchanged;
//   6. per-edge labels (an edge belongs to the BCC of its larger-preorder
//      endpoint) are gathered at the root and canonicalized by first
//      occurrence in input order, making the output bit-identical across
//      processor counts and against the sequential reference.
//
// Collective over ctx.comm, Context-first like every core entrypoint.

#include "bcc/reference.hpp"
#include "core/cc.hpp"
#include "graph/dist_edge_array.hpp"
#include "trace/context.hpp"

namespace camc::bcc {

struct BccOptions {
  /// Sample-size exponent of the auxiliary-graph CC (core::CcOptions).
  double epsilon = 0.2;
  /// CC engine for the auxiliary graph (the skeleton CC is exact under
  /// every engine; the label *partition* — all that survives
  /// canonicalization — is engine-independent).
  core::CcEngine engine = core::CcEngine::kSampling;
};

/// Collective over ctx.comm. Does not modify the input edge array.
/// Randomness (the auxiliary CC's sampling) derives from ctx.seed.
/// The result is valid at rank 0 and empty elsewhere.
BccResult biconnected_components(const Context& ctx,
                                 const graph::DistributedEdgeArray& graph,
                                 const BccOptions& options = {});

}  // namespace camc::bcc
