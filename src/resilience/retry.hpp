#pragma once

// Bounded-backoff retry of fault-killed work.
//
// run_with_recovery() retries an attempt function while its failures are
// *transient faults* — injected crashes/stalls, watchdog timeouts, and
// RankAborted casualties (the signatures of a run dying from a fault,
// real or injected). Everything else — overflow_error from the checked
// Weight contract, invalid_argument from collective validation, algorithm
// bugs — propagates immediately: retrying a deterministic error would
// loop forever, and swallowing a contract rejection would hide it from
// the layers (the fuzzer) that classify it.
//
// The attempt function receives the attempt index; the Monte-Carlo
// drivers (drivers.hpp) fold it into their Philox streams so each retry
// draws fresh, independent randomness while attempt 0 stays bit-identical
// to an unwrapped run.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bsp/fault.hpp"
#include "trace/context.hpp"

namespace camc::resilience {

struct RetryPolicy {
  /// Total attempts (first try included). At least 1 is always made.
  std::uint32_t max_attempts = 3;
  /// Exponential backoff before retry k is base * 2^k, capped below.
  double backoff_base_seconds = 0.001;
  double backoff_max_seconds = 0.25;
  /// Seeded jitter fraction in [0, 1]: the capped exponential delay d is
  /// scaled by a deterministic factor in [1 - jitter, 1], drawn from
  /// Philox(jitter_seed, salt ^ attempt). Jitter spreads a cohort of
  /// retriers that failed together (e.g. every shard of a cluster dying
  /// in one chaos event) so they do not thunder back in lockstep, while
  /// staying replayable from the seed. 0 (the default) pins the exact
  /// pre-jitter delays bit-for-bit.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0;
};

/// One line of the recovery log.
struct AttemptRecord {
  std::uint32_t attempt = 0;
  bool ok = false;
  bool transient_fault = false;  ///< failure was retryable
  std::string error;             ///< what() of the failure, empty on ok
  double backoff_seconds = 0.0;  ///< slept before the next attempt
};

/// What happened across all attempts of one recovered computation.
struct RecoveryReport {
  bool ok = false;
  std::uint32_t attempts = 0;
  std::vector<AttemptRecord> log;
  /// The watchdog's forensics, when a watchdog timeout was among the
  /// failures (the most recent one).
  std::shared_ptr<const bsp::RunReport> last_run_report;

  std::uint64_t faults_survived() const noexcept {
    std::uint64_t count = 0;
    for (const AttemptRecord& record : log)
      if (record.transient_fault) ++count;
    return count;
  }
};

/// True for the failure classes retry can help with: bsp::FaultError
/// (injected crash/stall, watchdog timeout) and bsp::RankAborted
/// (secondary casualty of either). Deterministic errors are not transient.
bool is_transient_fault(const std::exception_ptr& error) noexcept;

/// Backoff before the retry following failed attempt `attempt` (0-based):
/// min(base * 2^attempt, max) scaled by the policy's jitter (see
/// RetryPolicy::jitter), never negative. `salt` decorrelates independent
/// retriers sharing one policy — e.g. the cluster supervisor salts with
/// the shard index so co-dying shards draw distinct delays.
double backoff_delay(const RetryPolicy& policy, std::uint32_t attempt,
                     std::uint64_t salt) noexcept;

/// Unsalted convenience (salt = 0). With jitter = 0 this is exactly the
/// historical min(base * 2^attempt, max).
double backoff_delay(const RetryPolicy& policy, std::uint32_t attempt) noexcept;

/// Runs `attempt_fn(attempt)` until it succeeds, a non-transient error
/// propagates, or the attempt budget is exhausted (returns nullopt — the
/// graceful-degradation path; the report says why). `report` (optional)
/// receives the full attempt log either way.
template <class T>
std::optional<T> run_with_recovery(
    const RetryPolicy& policy,
    const std::function<T(std::uint32_t)>& attempt_fn,
    RecoveryReport* report = nullptr) {
  RecoveryReport local;
  RecoveryReport& out = report != nullptr ? *report : local;
  out = RecoveryReport{};
  const std::uint32_t attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    out.attempts = attempt + 1;
    AttemptRecord record;
    record.attempt = attempt;
    try {
      T value = attempt_fn(attempt);
      record.ok = true;
      out.log.push_back(std::move(record));
      out.ok = true;
      return value;
    } catch (const std::exception& e) {
      record.error = e.what();
      const std::exception_ptr error = std::current_exception();
      record.transient_fault = is_transient_fault(error);
      try {
        std::rethrow_exception(error);
      } catch (const bsp::WatchdogTimeout& timeout) {
        out.last_run_report = timeout.shared_report();
      } catch (...) {
      }
      if (!record.transient_fault) {
        out.log.push_back(std::move(record));
        throw;
      }
      const bool last = attempt + 1 >= attempts;
      if (!last) {
        record.backoff_seconds = backoff_delay(policy, attempt);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(record.backoff_seconds));
      }
      out.log.push_back(std::move(record));
    }
  }
  return std::nullopt;
}

/// Context flavor: attempt k calls `attempt_fn(ctx.with_attempt(
/// ctx.attempt + k))`, so the callee's stream derivations shift per retry
/// exactly as with the raw-index overload, and the Context's trace sink /
/// fault hooks ride along unchanged.
template <class T>
std::optional<T> run_with_recovery(
    const Context& ctx, const RetryPolicy& policy,
    const std::function<T(const Context&)>& attempt_fn,
    RecoveryReport* report = nullptr) {
  const std::function<T(std::uint32_t)> indexed =
      [&](std::uint32_t attempt) {
        return attempt_fn(ctx.with_attempt(ctx.attempt + attempt));
      };
  return run_with_recovery<T>(policy, indexed, report);
}

}  // namespace camc::resilience
