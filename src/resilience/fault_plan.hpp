#pragma once

// Deterministic, seeded fault plans — the standard bsp::FaultInjector.
//
// A FaultPlan is a list of armed fault specs, each keyed the same way the
// runtime keys its injection hook: (world rank, run-cumulative superstep
// index, collective name — empty matches any collective). Specs fire a
// bounded number of times (once by default), so a retried run does not
// re-hit the same fault: the recovery drivers rely on exactly this to make
// "crash one trial, retry succeeds" deterministic.
//
// Payload corruption is deterministic (Philox keyed by the plan seed and
// the fault site) and domain-safe per the fault.hpp contract: corrupted
// 4-byte lanes only ever decrease, so index-typed payloads stay in range
// and the corruption surfaces as a wrong answer or a thrown error, never
// as out-of-bounds UB.
//
// FaultPlan::random derives a whole schedule from a seed — the fault
// campaign (check::run_fault_campaign) sweeps such schedules across every
// oracle.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bsp/fault.hpp"

namespace camc::resilience {

/// One armed fault. `collective` empty means "any collective at that
/// (rank, superstep)"; `max_fires` 0 means unlimited.
struct FaultSpec {
  int rank = 0;
  std::uint64_t superstep = 0;
  std::string collective;
  bsp::FaultKind kind = bsp::FaultKind::kNone;
  std::uint32_t max_fires = 1;

  std::string to_string() const;
};

class FaultPlan final : public bsp::FaultInjector {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  // Movable (for the `random` factory); the atomic counters carry over by
  // value. Not copyable, and must not be moved while installed in a run.
  FaultPlan(FaultPlan&& other) noexcept
      : seed_(other.seed_),
        faults_(std::move(other.faults_)),
        crashes_(other.crashes_.load()),
        stalls_(other.stalls_.load()),
        corruptions_(other.corruptions_.load()),
        corruptions_applied_(other.corruptions_applied_.load()) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;
  FaultPlan& operator=(FaultPlan&&) = delete;

  void add(FaultSpec spec);
  void add_crash(int rank, std::uint64_t superstep,
                 std::string collective = "", std::uint32_t max_fires = 1);
  void add_stall(int rank, std::uint64_t superstep,
                 std::string collective = "", std::uint32_t max_fires = 1);
  void add_corruption(int rank, std::uint64_t superstep,
                      std::string collective = "",
                      std::uint32_t max_fires = 1);

  /// Derives a whole schedule from `seed`: `faults` specs with ranks below
  /// `ranks`, supersteps below `max_superstep`, any-collective keys, and a
  /// seed-chosen kind (stalls only when `allow_stalls` — a stall without a
  /// watchdog parks for fault.hpp's long fallback).
  static FaultPlan random(std::uint64_t seed, int ranks,
                          std::uint64_t max_superstep, int faults,
                          bool allow_stalls);

  // bsp::FaultInjector -----------------------------------------------------
  bsp::FaultKind at_collective(const bsp::FaultSite& site) noexcept override;
  void corrupt_payload(const bsp::FaultSite& site, void* data,
                       std::size_t bytes) noexcept override;

  // Telemetry (cumulative; atomic — the drivers read them between runs).
  std::uint64_t crashes_fired() const noexcept { return crashes_.load(); }
  std::uint64_t stalls_fired() const noexcept { return stalls_.load(); }
  std::uint64_t corruptions_fired() const noexcept {
    return corruptions_.load();
  }
  /// Corruptions that actually mutated a data-plane payload (a fired
  /// corruption on a control-sized payload leaves it intact).
  std::uint64_t corruptions_applied() const noexcept {
    return corruptions_applied_.load();
  }
  std::uint64_t faults_fired() const noexcept {
    return crashes_fired() + stalls_fired() + corruptions_fired();
  }

  std::size_t fault_count() const noexcept { return faults_.size(); }
  const FaultSpec& spec(std::size_t index) const {
    return faults_[index]->spec;
  }
  std::uint64_t seed() const noexcept { return seed_; }
  std::string to_string() const;

 private:
  /// A spec plus its atomic fire counter. Heap-held because atomics are
  /// immovable and the plan's vector must stay growable while idle.
  struct Armed {
    FaultSpec spec;
    std::atomic<std::uint32_t> fires{0};
  };

  std::uint64_t seed_;
  std::vector<std::unique_ptr<Armed>> faults_;
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> corruptions_applied_{0};
};

/// RAII installation of a process-wide injector and watchdog deadline
/// (bsp::set_global_fault_injector / set_global_watchdog_deadline), for
/// driving faults through code that owns its Machines — the oracle
/// registry's cached pools, most notably. Restores the previous globals on
/// destruction. Install only while no run is in flight.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(bsp::FaultInjector* injector,
                                double watchdog_deadline_seconds = 0.0);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  bsp::FaultInjector* previous_injector_;
  double previous_deadline_;
};

}  // namespace camc::resilience
