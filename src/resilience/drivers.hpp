#pragma once

// Recovery drivers for the Monte-Carlo layers.
//
// A min_cut / approx_min_cut run that dies from a fault (injected or
// real: crash, stall + watchdog, corruption-induced error, RankAborted
// cascade) is retried with bounded exponential backoff on fresh Philox
// streams — the attempt index is folded into every stream derivation (see
// Context::attempt), so retries draw independent randomness while a
// no-fault run (attempt 0) stays bit-identical to the unwrapped
// algorithm. When the retry budget runs out the driver degrades
// gracefully: ok = false plus the full RecoveryReport, never an exception
// for a fault-class failure. Non-fault errors (contract rejections,
// algorithm bugs) propagate unchanged.
//
// The drivers take a camc::Context: seed and base attempt come from
// ctx.seed / ctx.attempt, fault hooks and the watchdog from ctx.run, and
// a trace recorder (ctx.recorder) is re-bound per rank inside each
// attempt. (The pre-Context overloads are gone; put run options on
// ctx.run instead.)

#include <cstdint>
#include <vector>

#include "bsp/machine.hpp"
#include "core/approx_mincut.hpp"
#include "core/mincut.hpp"
#include "graph/edge.hpp"
#include "resilience/retry.hpp"

namespace camc::resilience {

struct ResilientMinCutResult {
  core::MinCutOutcome result;  ///< valid iff ok
  bool ok = false;
  RecoveryReport recovery;
};

/// Scatters `edges` and runs core::min_cut on `machine`, retrying
/// fault-killed runs per `policy`. ctx.run (watchdog deadline, extra
/// injector) applies to every attempt; attempt k runs with
/// ctx.with_attempt(ctx.attempt + k).
ResilientMinCutResult resilient_min_cut(
    bsp::Machine& machine, graph::Vertex n,
    const std::vector<graph::WeightedEdge>& edges, const Context& ctx,
    const core::MinCutOptions& options = {}, const RetryPolicy& policy = {});

struct ResilientApproxMinCutResult {
  core::ApproxMinCutResult result;  ///< valid iff ok
  bool ok = false;
  RecoveryReport recovery;
};

/// Same shape for the O(log n)-approximate cut.
ResilientApproxMinCutResult resilient_approx_min_cut(
    bsp::Machine& machine, graph::Vertex n,
    const std::vector<graph::WeightedEdge>& edges, const Context& ctx,
    const core::ApproxMinCutOptions& options = {},
    const RetryPolicy& policy = {});

}  // namespace camc::resilience
