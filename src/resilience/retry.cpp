#include "resilience/retry.hpp"

#include "bsp/barrier.hpp"

namespace camc::resilience {

bool is_transient_fault(const std::exception_ptr& error) noexcept {
  if (!error) return false;
  try {
    std::rethrow_exception(error);
  } catch (const bsp::FaultError&) {
    return true;  // injected crash/stall or watchdog timeout
  } catch (const bsp::RankAborted&) {
    return true;  // secondary casualty of a fault on a peer rank
  } catch (...) {
    return false;
  }
}

double backoff_delay(const RetryPolicy& policy,
                     std::uint32_t attempt) noexcept {
  double delay = policy.backoff_base_seconds;
  if (delay < 0.0) delay = 0.0;
  for (std::uint32_t i = 0; i < attempt; ++i) {
    delay *= 2.0;
    if (delay >= policy.backoff_max_seconds) break;
  }
  if (delay > policy.backoff_max_seconds) delay = policy.backoff_max_seconds;
  return delay < 0.0 ? 0.0 : delay;
}

}  // namespace camc::resilience
