#include "resilience/retry.hpp"

#include "bsp/barrier.hpp"
#include "rng/philox.hpp"

namespace camc::resilience {

bool is_transient_fault(const std::exception_ptr& error) noexcept {
  if (!error) return false;
  try {
    std::rethrow_exception(error);
  } catch (const bsp::FaultError&) {
    return true;  // injected crash/stall or watchdog timeout
  } catch (const bsp::RankAborted&) {
    return true;  // secondary casualty of a fault on a peer rank
  } catch (...) {
    return false;
  }
}

double backoff_delay(const RetryPolicy& policy, std::uint32_t attempt,
                     std::uint64_t salt) noexcept {
  double delay = policy.backoff_base_seconds;
  if (delay < 0.0) delay = 0.0;
  for (std::uint32_t i = 0; i < attempt; ++i) {
    delay *= 2.0;
    if (delay >= policy.backoff_max_seconds) break;
  }
  if (delay > policy.backoff_max_seconds) delay = policy.backoff_max_seconds;
  if (delay < 0.0) delay = 0.0;
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0 && delay > 0.0) {
    // Deterministic uniform in [0, 1): one Philox draw keyed by
    // (jitter_seed, salt ^ attempt), so a given retrier's k-th backoff is
    // always the same while distinct salts decorrelate.
    rng::Philox rng(policy.jitter_seed,
                    salt ^ (0x9E3779B97F4A7C15ull * (attempt + 1)));
    const double unit =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;  // 53-bit mantissa
    delay *= 1.0 - jitter * unit;
  }
  return delay;
}

double backoff_delay(const RetryPolicy& policy,
                     std::uint32_t attempt) noexcept {
  return backoff_delay(policy, attempt, /*salt=*/0);
}

}  // namespace camc::resilience
