#include "resilience/drivers.hpp"

#include "graph/dist_edge_array.hpp"

namespace camc::resilience {

ResilientMinCutResult resilient_min_cut(bsp::Machine& machine, graph::Vertex n,
                                        const std::vector<graph::WeightedEdge>& edges,
                                        const Context& ctx,
                                        const core::MinCutOptions& options,
                                        const RetryPolicy& policy) {
  ResilientMinCutResult out;
  const std::function<core::MinCutOutcome(const Context&)> attempt_fn =
      [&](const Context& attempt_ctx) {
        core::MinCutOutcome result;
        machine.run(
            [&](bsp::Comm& world) {
              const graph::DistributedEdgeArray dist =
                  graph::DistributedEdgeArray::scatter(world, n, edges);
              core::MinCutOutcome mine =
                  core::min_cut(attempt_ctx.bind(world), dist, options);
              if (world.rank() == 0) result = std::move(mine);
            },
            ctx.run);
        return result;
      };
  std::optional<core::MinCutOutcome> result =
      run_with_recovery<core::MinCutOutcome>(ctx, policy, attempt_fn,
                                             &out.recovery);
  if (result.has_value()) {
    out.result = std::move(*result);
    out.ok = true;
  }
  return out;
}

ResilientApproxMinCutResult resilient_approx_min_cut(
    bsp::Machine& machine, graph::Vertex n,
    const std::vector<graph::WeightedEdge>& edges, const Context& ctx,
    const core::ApproxMinCutOptions& options, const RetryPolicy& policy) {
  ResilientApproxMinCutResult out;
  const std::function<core::ApproxMinCutResult(const Context&)> attempt_fn =
      [&](const Context& attempt_ctx) {
        core::ApproxMinCutResult result;
        machine.run(
            [&](bsp::Comm& world) {
              const graph::DistributedEdgeArray dist =
                  graph::DistributedEdgeArray::scatter(world, n, edges);
              const core::ApproxMinCutResult mine =
                  core::approx_min_cut(attempt_ctx.bind(world), dist, options);
              if (world.rank() == 0) result = mine;
            },
            ctx.run);
        return result;
      };
  std::optional<core::ApproxMinCutResult> result =
      run_with_recovery<core::ApproxMinCutResult>(ctx, policy, attempt_fn,
                                                  &out.recovery);
  if (result.has_value()) {
    out.result = *result;
    out.ok = true;
  }
  return out;
}

}  // namespace camc::resilience
