#include "resilience/drivers.hpp"

#include "graph/dist_edge_array.hpp"

namespace camc::resilience {

ResilientMinCutResult resilient_min_cut(bsp::Machine& machine, graph::Vertex n,
                                        const std::vector<graph::WeightedEdge>& edges,
                                        const core::MinCutOptions& options,
                                        const RetryPolicy& policy,
                                        const bsp::RunOptions& run_options) {
  ResilientMinCutResult out;
  const std::function<core::MinCutOutcome(std::uint32_t)> attempt_fn =
      [&](std::uint32_t attempt) {
        core::MinCutOptions attempt_options = options;
        attempt_options.attempt = options.attempt + attempt;
        core::MinCutOutcome result;
        machine.run(
            [&](bsp::Comm& world) {
              const graph::DistributedEdgeArray dist =
                  graph::DistributedEdgeArray::scatter(world, n, edges);
              core::MinCutOutcome mine =
                  core::min_cut(world, dist, attempt_options);
              if (world.rank() == 0) result = std::move(mine);
            },
            run_options);
        return result;
      };
  std::optional<core::MinCutOutcome> result =
      run_with_recovery<core::MinCutOutcome>(policy, attempt_fn,
                                             &out.recovery);
  if (result.has_value()) {
    out.result = std::move(*result);
    out.ok = true;
  }
  return out;
}

ResilientApproxMinCutResult resilient_approx_min_cut(
    bsp::Machine& machine, graph::Vertex n,
    const std::vector<graph::WeightedEdge>& edges,
    const core::ApproxMinCutOptions& options, const RetryPolicy& policy,
    const bsp::RunOptions& run_options) {
  ResilientApproxMinCutResult out;
  const std::function<core::ApproxMinCutResult(std::uint32_t)> attempt_fn =
      [&](std::uint32_t attempt) {
        core::ApproxMinCutOptions attempt_options = options;
        attempt_options.attempt = options.attempt + attempt;
        core::ApproxMinCutResult result;
        machine.run(
            [&](bsp::Comm& world) {
              const graph::DistributedEdgeArray dist =
                  graph::DistributedEdgeArray::scatter(world, n, edges);
              const core::ApproxMinCutResult mine =
                  core::approx_min_cut(world, dist, attempt_options);
              if (world.rank() == 0) result = mine;
            },
            run_options);
        return result;
      };
  std::optional<core::ApproxMinCutResult> result =
      run_with_recovery<core::ApproxMinCutResult>(policy, attempt_fn,
                                                  &out.recovery);
  if (result.has_value()) {
    out.result = *result;
    out.ok = true;
  }
  return out;
}

}  // namespace camc::resilience
