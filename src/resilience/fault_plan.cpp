#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "rng/philox.hpp"

namespace camc::resilience {

namespace {

const char* kind_name(bsp::FaultKind kind) {
  switch (kind) {
    case bsp::FaultKind::kNone:
      return "none";
    case bsp::FaultKind::kCrash:
      return "crash";
    case bsp::FaultKind::kStall:
      return "stall";
    case bsp::FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

/// FNV-1a over the collective name, so the corruption stream is a pure
/// function of the fault site (not of string-literal addresses).
std::uint64_t hash_name(const char* name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char* c = name; c != nullptr && *c != '\0'; ++c) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*c));
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  out << kind_name(kind) << "@rank" << rank << ",superstep" << superstep;
  out << "," << (collective.empty() ? "any" : collective);
  if (max_fires != 1) out << ",fires<=" << max_fires;
  return out.str();
}

void FaultPlan::add(FaultSpec spec) {
  auto armed = std::make_unique<Armed>();
  armed->spec = std::move(spec);
  faults_.push_back(std::move(armed));
}

void FaultPlan::add_crash(int rank, std::uint64_t superstep,
                          std::string collective, std::uint32_t max_fires) {
  add(FaultSpec{rank, superstep, std::move(collective),
                bsp::FaultKind::kCrash, max_fires});
}

void FaultPlan::add_stall(int rank, std::uint64_t superstep,
                          std::string collective, std::uint32_t max_fires) {
  add(FaultSpec{rank, superstep, std::move(collective),
                bsp::FaultKind::kStall, max_fires});
}

void FaultPlan::add_corruption(int rank, std::uint64_t superstep,
                               std::string collective,
                               std::uint32_t max_fires) {
  add(FaultSpec{rank, superstep, std::move(collective),
                bsp::FaultKind::kCorrupt, max_fires});
}

FaultPlan FaultPlan::random(std::uint64_t seed, int ranks,
                            std::uint64_t max_superstep, int faults,
                            bool allow_stalls) {
  FaultPlan plan(seed);
  rng::Philox gen(seed, /*stream=*/0xFA017ull);
  for (int i = 0; i < faults; ++i) {
    FaultSpec spec;
    spec.rank = static_cast<int>(
        gen.bounded(static_cast<std::uint64_t>(ranks > 0 ? ranks : 1)));
    spec.superstep = gen.bounded(max_superstep > 0 ? max_superstep : 1);
    const std::uint64_t draw = gen.bounded(allow_stalls ? 3 : 2);
    spec.kind = draw == 0   ? bsp::FaultKind::kCrash
                : draw == 1 ? bsp::FaultKind::kCorrupt
                            : bsp::FaultKind::kStall;
    spec.max_fires = 1;
    plan.add(std::move(spec));
  }
  return plan;
}

bsp::FaultKind FaultPlan::at_collective(const bsp::FaultSite& site) noexcept {
  for (const std::unique_ptr<Armed>& armed : faults_) {
    const FaultSpec& spec = armed->spec;
    if (spec.kind == bsp::FaultKind::kNone) continue;
    if (spec.rank != site.rank || spec.superstep != site.superstep) continue;
    if (!spec.collective.empty() &&
        (site.collective == nullptr || spec.collective != site.collective))
      continue;
    if (spec.max_fires != 0) {
      // Claim one fire atomically; a spent spec never fires again, which
      // is what lets a retried run get past the fault it died from.
      std::uint32_t fired = armed->fires.load(std::memory_order_relaxed);
      bool claimed = false;
      while (fired < spec.max_fires) {
        if (armed->fires.compare_exchange_weak(fired, fired + 1,
                                               std::memory_order_relaxed)) {
          claimed = true;
          break;
        }
      }
      if (!claimed) continue;
    } else {
      armed->fires.fetch_add(1, std::memory_order_relaxed);
    }
    switch (spec.kind) {
      case bsp::FaultKind::kCrash:
        crashes_.fetch_add(1, std::memory_order_relaxed);
        break;
      case bsp::FaultKind::kStall:
        stalls_.fetch_add(1, std::memory_order_relaxed);
        break;
      case bsp::FaultKind::kCorrupt:
        corruptions_.fetch_add(1, std::memory_order_relaxed);
        break;
      case bsp::FaultKind::kNone:
        break;
    }
    return spec.kind;
  }
  return bsp::FaultKind::kNone;
}

void FaultPlan::corrupt_payload(const bsp::FaultSite& site, void* data,
                                std::size_t bytes) noexcept {
  // Corrupt 4-byte lanes, not 8-byte words: every index-typed field in a
  // collective payload is a 4-byte graph::Vertex on a 4-byte boundary, so
  // decreasing a lane strictly decreases any index it covers — whereas
  // decreasing a 64-bit word can *increase* its low 32-bit lane through a
  // borrow and push a packed vertex id out of range (found by the fault
  // campaign as an OOB read in bsp_sv_components). A uint64 field also
  // strictly decreases when either of its lanes does, so the fault.hpp
  // domain-safety contract holds for both widths.
  const std::size_t lanes = bytes / sizeof(std::uint32_t);
  if (lanes == 0 || data == nullptr) return;
  // Stream is a pure function of (plan seed, site) => the same schedule
  // corrupts the same payload the same way on every run.
  rng::Philox gen(seed_,
                  /*stream=*/0xC0442ull ^
                      (static_cast<std::uint64_t>(site.rank) << 48) ^
                      (site.superstep << 16) ^ hash_name(site.collective));
  const std::uint64_t flips = 1 + gen.bounded(std::min<std::uint64_t>(lanes, 4));
  bool mutated = false;
  auto* base = static_cast<unsigned char*>(data);
  for (std::uint64_t f = 0; f < flips; ++f) {
    const std::uint64_t index = gen.bounded(lanes);
    std::uint32_t lane;
    std::memcpy(&lane, base + index * sizeof(lane), sizeof(lane));
    if (lane == 0) continue;  // already the domain floor
    const std::uint32_t corrupted =
        static_cast<std::uint32_t>(gen.bounded(lane));
    std::memcpy(base + index * sizeof(lane), &corrupted, sizeof(corrupted));
    mutated = true;
  }
  if (mutated) corruptions_applied_.fetch_add(1, std::memory_order_relaxed);
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "plan(seed=" << seed_ << "):";
  if (faults_.empty()) out << " (empty)";
  for (const std::unique_ptr<Armed>& armed : faults_)
    out << " " << armed->spec.to_string();
  return out.str();
}

ScopedFaultInjection::ScopedFaultInjection(bsp::FaultInjector* injector,
                                           double watchdog_deadline_seconds)
    : previous_injector_(bsp::global_fault_injector()),
      previous_deadline_(bsp::global_watchdog_deadline()) {
  bsp::set_global_fault_injector(injector);
  bsp::set_global_watchdog_deadline(watchdog_deadline_seconds);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  bsp::set_global_fault_injector(previous_injector_);
  bsp::set_global_watchdog_deadline(previous_deadline_);
}

}  // namespace camc::resilience
