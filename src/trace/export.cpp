#include "trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string_view>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace camc::trace {

namespace {

/// Per-rank span frame while replaying a rank's event log.
struct Frame {
  const Event* begin = nullptr;
  bool outermost_of_name = false;
};

/// Walks one rank's log, invoking `on_pair(begin, end, outermost)` for
/// every matched begin/end pair in end order. `outermost` is false when an
/// enclosing open span has the same name (recursive phases), letting
/// aggregation count self-nested time once.
template <class OnPair>
void for_each_pair(const RankTrace& rank, OnPair&& on_pair) {
  std::vector<Frame> stack;
  for (const Event& event : rank.events) {
    if (event.kind == EventKind::kBegin) {
      Frame frame;
      frame.begin = &event;
      frame.outermost_of_name = true;
      for (const Frame& open : stack) {
        if (open.begin->name == event.name ||
            std::string_view(open.begin->name) == event.name) {
          frame.outermost_of_name = false;
          break;
        }
      }
      stack.push_back(frame);
    } else if (event.kind == EventKind::kEnd && !stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      on_pair(*frame.begin, event, frame.outermost_of_name);
    }
  }
}

void append_escaped(std::string& out, const char* text) {
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c == '"' || *c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(*c) < 0x20) continue;  // names are ours
    out.push_back(*c);
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

void append_double(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  out += buffer;
}

void append_metadata(std::string& out, int pid, int ranks, bool& first) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"tid\":0,\"args\":{\"name\":\"camc run %d\"}}",
                first ? "" : ",\n", pid, pid);
  first = false;
  out += buffer;
  for (int r = 0; r < ranks; ++r) {
    std::snprintf(buffer, sizeof(buffer),
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"rank %d\"}}",
                  pid, r, r);
    out += buffer;
  }
}

void append_events(std::string& out, const Recorder& recorder, int pid,
                   bool& first) {
  append_metadata(out, pid, recorder.ranks(), first);
  for (int r = 0; r < recorder.ranks(); ++r) {
    for (const Event& event : recorder.rank(r).events) {
      const char ph = event.kind == EventKind::kBegin  ? 'B'
                      : event.kind == EventKind::kEnd  ? 'E'
                                                       : 'i';
      out += ",\n{\"name\":\"";
      append_escaped(out, event.name);
      out += "\",\"cat\":\"camc\",\"ph\":\"";
      out.push_back(ph);
      out += "\",\"pid\":";
      append_u64(out, static_cast<std::uint64_t>(pid));
      out += ",\"tid\":";
      append_u64(out, static_cast<std::uint64_t>(r));
      out += ",\"ts\":";
      append_double(out, event.wall_seconds * 1e6);
      if (event.kind == EventKind::kInstant) out += ",\"s\":\"t\"";
      out += ",\"args\":{";
      if (event.kind == EventKind::kEnd) {
        out += "\"supersteps\":";
        append_u64(out, event.counters.supersteps);
        out += ",\"words_sent\":";
        append_u64(out, event.counters.words_sent);
        out += ",\"words_received\":";
        append_u64(out, event.counters.words_received);
        out += ",\"cache_misses\":";
        append_u64(out, event.counters.cache_misses);
      } else {
        out += "\"arg0\":";
        append_u64(out, event.arg0);
        out += ",\"arg1\":";
        append_u64(out, event.arg1);
      }
      out += "}}";
    }
  }
}

}  // namespace

std::vector<PhaseSummary> summarize(const Recorder& recorder) {
  std::vector<PhaseSummary> phases;
  std::unordered_map<std::string, std::size_t> index;
  // Per-rank accumulation, reduced by max over ranks below.
  struct RankTotals {
    std::uint64_t supersteps = 0;
    std::uint64_t words = 0;
    double comm_seconds = 0.0;
    double wall_seconds = 0.0;
    std::uint64_t cache_misses = 0;
  };
  std::vector<std::vector<RankTotals>> per_rank;  // [phase][rank]

  for (int r = 0; r < recorder.ranks(); ++r) {
    for_each_pair(recorder.rank(r), [&](const Event& begin, const Event& end,
                                        bool outermost) {
      auto [it, inserted] = index.try_emplace(begin.name, phases.size());
      if (inserted) {
        PhaseSummary phase;
        phase.name = begin.name;
        phases.push_back(std::move(phase));
        per_rank.emplace_back(
            static_cast<std::size_t>(recorder.ranks()));
      }
      const std::size_t k = it->second;
      phases[k].spans += 1;
      if (!outermost) return;  // self-nested: counted by the outer span
      RankTotals& totals = per_rank[k][static_cast<std::size_t>(r)];
      totals.supersteps += end.counters.supersteps - begin.counters.supersteps;
      totals.words += (end.counters.words_sent - begin.counters.words_sent) +
                      (end.counters.words_received -
                       begin.counters.words_received);
      totals.comm_seconds +=
          end.counters.comm_seconds - begin.counters.comm_seconds;
      totals.wall_seconds += end.wall_seconds - begin.wall_seconds;
      totals.cache_misses +=
          end.counters.cache_misses - begin.counters.cache_misses;
    });
  }

  for (std::size_t k = 0; k < phases.size(); ++k) {
    for (const RankTotals& totals : per_rank[k]) {
      phases[k].supersteps = std::max(phases[k].supersteps, totals.supersteps);
      phases[k].words = std::max(phases[k].words, totals.words);
      phases[k].comm_seconds =
          std::max(phases[k].comm_seconds, totals.comm_seconds);
      phases[k].wall_seconds =
          std::max(phases[k].wall_seconds, totals.wall_seconds);
      phases[k].cache_misses =
          std::max(phases[k].cache_misses, totals.cache_misses);
    }
  }
  return phases;
}

std::string format_summary(const std::vector<PhaseSummary>& phases) {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-20s %6s %10s %12s %10s %10s\n", "phase",
                "spans", "supersteps", "words", "comm_ms", "wall_ms");
  out << line;
  for (const PhaseSummary& phase : phases) {
    std::snprintf(line, sizeof(line),
                  "%-20s %6" PRIu64 " %10" PRIu64 " %12" PRIu64
                  " %10.3f %10.3f\n",
                  phase.name.c_str(), phase.spans, phase.supersteps,
                  phase.words, phase.comm_seconds * 1e3,
                  phase.wall_seconds * 1e3);
    out << line;
  }
  return out.str();
}

void write_chrome_trace(const Recorder& recorder, std::ostream& out,
                        int pid) {
  std::string body;
  bool first = true;
  append_events(body, recorder, pid, first);
  out << "{\"traceEvents\":[\n"
      << body << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(const std::vector<const Recorder*>& recorders,
                        std::ostream& out) {
  std::string body;
  bool first = true;
  int pid = 0;
  for (const Recorder* recorder : recorders) {
    if (recorder != nullptr) append_events(body, *recorder, pid, first);
    ++pid;
  }
  out << "{\"traceEvents\":[\n"
      << body << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const Recorder& recorder) {
  std::ostringstream out;
  write_chrome_trace(recorder, out);
  return out.str();
}

bool write_chrome_trace_file(const Recorder& recorder,
                             const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  write_chrome_trace(recorder, file);
  return static_cast<bool>(file);
}

}  // namespace camc::trace
