#pragma once

// camc::Context — the unified execution-context carrier of the core
// algorithms (the PR-5 api_redesign).
//
// Before it, every entrypoint had drifted into an ad-hoc parameter list:
// a comm here, a seed buried in an options struct there, an attempt salt
// in two of the five, fault hooks in a third place entirely. Context
// carries the cross-cutting state in one value:
//
//   comm      the rank's communicator (empty for sequential entrypoints)
//   seed      base Philox seed (was MinCutOptions/CcOptions/... ::seed)
//   attempt   recovery-attempt salt (was MinCutOptions::attempt)
//   recorder  trace sink; null = tracing disabled (the single-branch path)
//   tracer    this rank's bound trace handle (derived, see bind())
//   cache     optional cachesim session snapshotted at span boundaries
//   run       fault hooks + watchdog (bsp::RunOptions) for the drivers
//
// Algorithm option structs keep only algorithm-shape knobs (trial counts,
// epsilon, leaf sizes, ...). The old comm-first overloads are gone —
// every caller constructs a Context (a one-liner: Context(comm) or
// Context(comm, seed)).
//
// Lifecycle idiom:
//
//   trace::Recorder recorder(p);               // host side, optional
//   Context ctx;                               // host-side carrier
//   ctx.seed = 7; ctx.recorder = &recorder;
//   machine.run([&](bsp::Comm& world) {
//     const Context rank_ctx = ctx.bind(world);   // comm + rank tracer
//     auto result = core::min_cut(rank_ctx, dist, options);
//   }, ctx.run);
//
// bind() attaches a communicator and resolves the rank's trace sink;
// fork() swaps in a sub-communicator (trial groups, recursion halves)
// while keeping the already-bound tracer, so a rank's spans stay on its
// world-rank track. Both return copies — a Context is a cheap value.

#include <cstdint>

#include "bsp/comm.hpp"
#include "bsp/machine.hpp"
#include "cachesim/session.hpp"
#include "trace/trace.hpp"

namespace camc {

struct Context {
  bsp::Comm comm;
  std::uint64_t seed = 1;
  std::uint32_t attempt = 0;
  trace::Recorder* recorder = nullptr;
  trace::Tracer tracer;
  const cachesim::Session* cache = nullptr;
  bsp::RunOptions run;

  Context() = default;
  explicit Context(std::uint64_t seed_value) : seed(seed_value) {}
  explicit Context(const bsp::Comm& world, std::uint64_t seed_value = 1,
                   trace::Recorder* trace_recorder = nullptr)
      : comm(world), seed(seed_value), recorder(trace_recorder) {
    rebind_tracer();
  }

  /// Rank-side binding: attach `world` and resolve this rank's trace sink.
  Context bind(const bsp::Comm& world) const {
    Context out = *this;
    out.comm = world;
    out.rebind_tracer();
    return out;
  }

  /// Sub-communicator hop (trial group, recursion half): swap the comm but
  /// keep the tracer bound to the original world rank's track.
  Context fork(const bsp::Comm& sub) const {
    Context out = *this;
    out.comm = sub;
    return out;
  }

  Context with_seed(std::uint64_t seed_value) const {
    Context out = *this;
    out.seed = seed_value;
    return out;
  }

  Context with_attempt(std::uint32_t attempt_value) const {
    Context out = *this;
    out.attempt = attempt_value;
    return out;
  }

  /// The tracing hook: one branch when disabled, a begin event (ended by
  /// the returned RAII span) when enabled.
  trace::Span span(const char* name, std::uint64_t arg0 = 0,
                   std::uint64_t arg1 = 0) const {
    if (!tracer.enabled()) return {};
    return trace::Span(tracer, stats_or_null(), cache, name, arg0, arg1);
  }

  const bsp::RankStats* stats_or_null() const noexcept {
    return comm.size() > 0 ? &comm.stats() : nullptr;
  }

 private:
  void rebind_tracer() {
    if (recorder != nullptr && comm.size() > 0 &&
        comm.rank() < recorder->ranks()) {
      tracer = trace::Tracer(&recorder->rank(comm.rank()), recorder->epoch());
    } else {
      tracer = trace::Tracer();
    }
  }
};

}  // namespace camc
