#pragma once

// Trace exporters: Chrome trace-event JSON (Perfetto-loadable, one track
// per rank) and the compact per-phase text summary (the paper's Table-1
// shape: supersteps / words / time per phase).

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace camc::trace {

/// Per-phase aggregate over one Recorder. Counter fields are BSP-reduced:
/// the per-rank deltas are summed over that rank's spans of the phase,
/// then the maximum over ranks is reported (the h-relation convention of
/// bsp::MachineStats). `spans` counts completed spans over all ranks.
/// Self-nested spans (recursion) contribute only their outermost
/// occurrence to the totals so nothing is double-counted.
struct PhaseSummary {
  std::string name;
  std::uint64_t spans = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t words = 0;  ///< sent + received
  double comm_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t cache_misses = 0;
};

/// Aggregates matched begin/end pairs by phase name, in first-seen order
/// (rank-major scan, so the order is deterministic for a deterministic
/// span structure). Unmatched begins (a span alive when the recorder was
/// read) are ignored.
std::vector<PhaseSummary> summarize(const Recorder& recorder);

/// Fixed-width text table of a summary; one line per phase.
std::string format_summary(const std::vector<PhaseSummary>& phases);

/// Writes the Chrome trace-event JSON object form:
///   {"traceEvents":[...], "displayTimeUnit":"ms"}
/// B/E events carry pid, tid = rank, ts in microseconds, and the span's
/// args (arg0/arg1 at begin; counter snapshot at end). Metadata events
/// name the process and the per-rank threads.
void write_chrome_trace(const Recorder& recorder, std::ostream& out,
                        int pid = 0);

/// Multi-recorder form: each recorder becomes one process (pid = index) —
/// how camc_serve merges per-epoch traces into a single timeline file.
void write_chrome_trace(const std::vector<const Recorder*>& recorders,
                        std::ostream& out);

/// write_chrome_trace into a string (tests, svc payloads).
std::string chrome_trace_json(const Recorder& recorder);

/// Writes the single-recorder form to `path`; returns false on I/O error.
bool write_chrome_trace_file(const Recorder& recorder,
                             const std::string& path);

}  // namespace camc::trace
