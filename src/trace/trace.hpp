#pragma once

// Structured tracing (camc::trace): per-rank span recorders aligned to BSP
// supersteps.
//
// The paper argues entirely in observable quantities — supersteps, words
// moved per superstep, time inside collectives (§2.1, Table 1) — but
// bsp::RankStats only reports end-of-run aggregates. A Recorder attributes
// those counters to *phases*: every Span boundary snapshots the owning
// rank's RankStats (and, when attached, a cachesim::Session's miss count),
// so the per-phase deltas reconstruct exactly where inside a run the
// supersteps and words were spent. export.hpp turns a Recorder into a
// Chrome trace-event JSON (one track per rank, loads in Perfetto) or the
// paper's Table-1-shaped text summary.
//
// Cost contract (pinned by bench_trace_overhead and the counter goldens):
//
// * A disabled sink costs a single branch per hook — Context::span()
//   tests one pointer and returns an inert Span; nothing else runs.
// * Tracing draws no randomness and calls no collective, so Philox
//   streams and BSP counters are bit-identical with tracing on or off.
//
// Threading: each rank writes only its own RankTrace (cache-line aligned
// against false sharing); the Recorder may only be read after the
// machine run that filled it has completed. No locks anywhere.

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "bsp/stats.hpp"
#include "cachesim/session.hpp"

namespace camc::trace {

/// RankStats + cachesim view captured at one span boundary; per-phase
/// costs are the end-minus-begin deltas.
struct CounterSnapshot {
  std::uint64_t supersteps = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  double comm_seconds = 0.0;
  std::uint64_t cache_misses = 0;
};

enum class EventKind : std::uint8_t { kBegin, kEnd, kInstant };

struct Event {
  /// Static string literal (phase name); never owned, never freed.
  const char* name = nullptr;
  EventKind kind = EventKind::kInstant;
  /// Nesting depth of the span this event begins/ends (root spans are 0).
  std::uint32_t depth = 0;
  /// Seconds since the Recorder's epoch.
  double wall_seconds = 0.0;
  /// Phase-specific arguments (vertex counts, trial indices, ...).
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  CounterSnapshot counters;
};

/// One rank's event log. Aligned so neighbouring ranks' appends do not
/// false-share.
struct alignas(64) RankTrace {
  std::vector<Event> events;
  std::uint32_t open_depth = 0;  ///< live nesting depth while recording
};

/// Owns the per-rank traces of one traced execution. Construct with the
/// machine's rank count before the run; read after it.
class Recorder {
 public:
  explicit Recorder(int ranks)
      : epoch_(std::chrono::steady_clock::now()),
        ranks_(static_cast<std::size_t>(ranks < 0 ? 0 : ranks)) {}

  int ranks() const noexcept { return static_cast<int>(ranks_.size()); }
  RankTrace& rank(int r) { return ranks_[static_cast<std::size_t>(r)]; }
  const RankTrace& rank(int r) const {
    return ranks_[static_cast<std::size_t>(r)];
  }
  std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

  std::size_t total_events() const noexcept {
    std::size_t n = 0;
    for (const RankTrace& r : ranks_) n += r.events.size();
    return n;
  }

  void clear() {
    for (RankTrace& r : ranks_) {
      r.events.clear();
      r.open_depth = 0;
    }
    epoch_ = std::chrono::steady_clock::now();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<RankTrace> ranks_;
};

/// Per-rank handle a Context carries: the rank's sink plus the recorder's
/// epoch (copied so the hot path needs no Recorder indirection). A
/// default-constructed Tracer is the disabled sink.
class Tracer {
 public:
  Tracer() = default;
  Tracer(RankTrace* sink, std::chrono::steady_clock::time_point epoch)
      : sink_(sink), epoch_(epoch) {}

  bool enabled() const noexcept { return sink_ != nullptr; }
  RankTrace* sink() const noexcept { return sink_; }
  std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

 private:
  RankTrace* sink_ = nullptr;
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII phase span: records a begin event at construction and the matching
/// end event (with a fresh counter snapshot) at destruction or end().
/// Move-only; a default-constructed or moved-from Span is inert. Obtained
/// from Context::span() — never constructed enabled unless tracing is on.
class Span {
 public:
  Span() = default;
  Span(const Tracer& tracer, const bsp::RankStats* stats,
       const cachesim::Session* cache, const char* name, std::uint64_t arg0,
       std::uint64_t arg1)
      : sink_(tracer.sink()),
        stats_(stats),
        cache_(cache),
        name_(name),
        epoch_(tracer.epoch()) {
    if (sink_ == nullptr) return;
    Event event;
    event.name = name_;
    event.kind = EventKind::kBegin;
    event.depth = sink_->open_depth++;
    event.wall_seconds = now();
    event.arg0 = arg0;
    event.arg1 = arg1;
    event.counters = snapshot();
    sink_->events.push_back(event);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept
      : sink_(std::exchange(other.sink_, nullptr)),
        stats_(other.stats_),
        cache_(other.cache_),
        name_(other.name_),
        epoch_(other.epoch_) {}
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      sink_ = std::exchange(other.sink_, nullptr);
      stats_ = other.stats_;
      cache_ = other.cache_;
      name_ = other.name_;
      epoch_ = other.epoch_;
    }
    return *this;
  }
  ~Span() { end(); }

  /// Ends the span early (idempotent).
  void end() {
    if (sink_ == nullptr) return;
    Event event;
    event.name = name_;
    event.kind = EventKind::kEnd;
    event.depth = --sink_->open_depth;
    event.wall_seconds = now();
    event.counters = snapshot();
    sink_->events.push_back(event);
    sink_ = nullptr;
  }

  bool active() const noexcept { return sink_ != nullptr; }

 private:
  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  CounterSnapshot snapshot() const {
    CounterSnapshot out;
    if (stats_ != nullptr) {
      out.supersteps = stats_->supersteps;
      out.words_sent = stats_->words_sent;
      out.words_received = stats_->words_received;
      out.comm_seconds = stats_->comm_seconds;
    }
    if (cache_ != nullptr) out.cache_misses = cache_->misses();
    return out;
  }

  RankTrace* sink_ = nullptr;
  const bsp::RankStats* stats_ = nullptr;
  const cachesim::Session* cache_ = nullptr;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace camc::trace
