#include "seq/stoer_wagner.hpp"

#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace camc::seq {

using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

CutResult stoer_wagner_min_cut(Vertex n,
                               std::span<const WeightedEdge> edges) {
  if (n < 2) throw std::invalid_argument("stoer_wagner: n < 2");

  // All accumulations below are checked: a wrapped sum would report a bogus
  // near-zero cut instead of failing loudly (found by the fuzzer's
  // weight-extreme family).
  std::vector<std::unordered_map<Vertex, Weight>> adj(n);
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v) continue;
    Weight& uv = adj[e.u][e.v];
    uv = graph::checked_add(uv, e.weight);
    adj[e.v][e.u] = uv;
  }

  std::vector<bool> merged(n, false);
  std::vector<std::vector<Vertex>> members(n);
  for (Vertex v = 0; v < n; ++v) members[v] = {v};

  CutResult best;
  best.value = static_cast<Weight>(-1);

  Vertex active = n;
  while (active > 1) {
    // Maximum adjacency search from the lowest unmerged vertex.
    std::vector<Weight> key(n, 0);
    std::vector<bool> in_order(n, false);
    std::priority_queue<std::pair<Weight, Vertex>> heap;

    Vertex start = 0;
    while (merged[start]) ++start;
    heap.emplace(0, start);

    Vertex previous = start, last = start;
    Weight last_key = 0;
    Vertex added = 0;
    while (added < active) {
      Vertex v;
      do {
        if (heap.empty()) {
          // Disconnected remainder: pull any unmerged, unordered vertex
          // with key 0 (its cut of the phase will be 0).
          v = static_cast<Vertex>(-1);
          for (Vertex w = 0; w < n; ++w) {
            if (!merged[w] && !in_order[w]) {
              v = w;
              break;
            }
          }
          break;
        }
        v = heap.top().second;
        heap.pop();
      } while (merged[v] || in_order[v]);

      in_order[v] = true;
      previous = last;
      last = v;
      last_key = key[v];
      ++added;
      for (const auto& [to, w] : adj[v]) {
        if (merged[to] || in_order[to]) continue;
        key[to] = graph::checked_add(key[to], w);
        heap.emplace(key[to], to);
      }
    }

    // Cut of the phase: `last` alone against the rest.
    if (last_key < best.value) {
      best.value = last_key;
      best.side = members[last];
    }

    // Merge `last` into `previous`.
    for (const auto& [to, w] : adj[last]) {
      if (to == previous) continue;
      Weight& pt = adj[previous][to];
      pt = graph::checked_add(pt, w);
      adj[to][previous] = pt;
      adj[to].erase(last);
    }
    adj[previous].erase(last);
    adj[last].clear();
    merged[last] = true;
    members[previous].insert(members[previous].end(), members[last].begin(),
                             members[last].end());
    members[last].clear();
    --active;
  }
  return best;
}

}  // namespace camc::seq
