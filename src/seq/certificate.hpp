#pragma once

// Nagamochi-Ibaraki style sparse k-connectivity certificate [29].
//
// A k-certificate H of G is a subgraph (with reduced weights) such that
// for EVERY cut S:  min(k, cut_H(S)) == min(k, cut_G(S)).
// In particular, if k is at least the minimum cut value of G (e.g. the
// minimum weighted degree, the bound preprocessing uses), H has exactly
// the same minimum cuts as G — with total weight at most k * (n - 1).
//
// Construction: k rounds of maximal spanning forests over the residual
// graph, moving one unit of weight per forest edge per round (the
// forest-decomposition view of scan-first search). O(k * m * alpha(n)).
// Worth it when k is small relative to the average degree — e.g. sparse
// unweighted graphs where k = min degree.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace camc::seq {

struct CertificateResult {
  std::vector<graph::WeightedEdge> edges;  ///< combined, canonical
  std::uint32_t rounds = 0;                ///< forests actually built
};

/// Builds the k-certificate. Throws std::invalid_argument for k == 0.
CertificateResult sparse_certificate(graph::Vertex n,
                                     std::span<const graph::WeightedEdge> edges,
                                     graph::Weight k);

}  // namespace camc::seq
