#include "seq/matula.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "graph/contraction_ref.hpp"
#include "seq/certificate.hpp"
#include "seq/union_find.hpp"

namespace camc::seq {

using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

MatulaResult matula_approx_min_cut(Vertex n,
                                   std::span<const WeightedEdge> input,
                                   double epsilon) {
  if (n < 2) throw std::invalid_argument("matula: n < 2");
  if (!(epsilon > 0)) throw std::invalid_argument("matula: epsilon <= 0");

  std::vector<WeightedEdge> edges(input.begin(), input.end());
  Vertex n_cur = n;
  MatulaResult result;
  result.estimate = static_cast<Weight>(-1);

  while (n_cur >= 2) {
    ++result.iterations;
    // Minimum weighted degree = a cut; disconnection shows up as 0.
    // (Once everything has contracted into a single vertex there is no
    // cut to read off, hence the loop guard above.)
    std::vector<Weight> degree(n_cur, 0);
    for (const WeightedEdge& e : edges) {
      degree[e.u] += e.weight;
      degree[e.v] += e.weight;
    }
    Weight delta = degree[0];
    for (const Weight d : degree) delta = std::min(delta, d);
    result.estimate = std::min(result.estimate, delta);
    if (delta == 0 || n_cur == 2) break;

    const auto k = static_cast<Weight>(
        std::ceil(static_cast<double>(delta) / (2.0 + epsilon)));
    const CertificateResult certificate =
        sparse_certificate(n_cur, edges, std::max<Weight>(k, 1));

    // Contract every edge with weight beyond what the certificate needed:
    // its endpoints are >= k-connected, so it crosses no cut below k.
    std::map<std::pair<Vertex, Vertex>, Weight> certified;
    for (const WeightedEdge& e : certificate.edges)
      certified[{std::min(e.u, e.v), std::max(e.u, e.v)}] = e.weight;

    UnionFind dsu(n_cur);
    // Combine parallel input edges per pair to compare against the
    // certificate's per-pair weights.
    std::vector<Vertex> identity(n_cur);
    for (Vertex v = 0; v < n_cur; ++v) identity[v] = v;
    const auto combined = graph::contract_edges_reference(edges, identity);
    bool contracted_any = false;
    for (const WeightedEdge& e : combined) {
      const auto it = certified.find({e.u, e.v});
      const Weight kept = it == certified.end() ? 0 : it->second;
      if (e.weight > kept) {
        // Some weight of this pair was left out of the k-certificate.
        if (dsu.unite(e.u, e.v)) contracted_any = true;
      }
    }
    if (!contracted_any) break;

    std::vector<Vertex> mapping = dsu.labels();
    const Vertex components = graph::normalize_labels(mapping);
    edges = graph::contract_edges_reference(edges, mapping);
    n_cur = components;
  }
  if (result.estimate == static_cast<Weight>(-1)) result.estimate = 0;
  return result;
}

}  // namespace camc::seq
