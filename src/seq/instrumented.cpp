#include "seq/instrumented.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cachesim/traced.hpp"
#include "graph/contraction_ref.hpp"
#include "graph/local_graph.hpp"
#include "rng/alias_table.hpp"
#include "rng/philox.hpp"
#include "seq/union_find.hpp"

namespace camc::seq {
namespace {

using cachesim::Session;
using cachesim::Traced;
using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

TraceReport report_of(const Session& session, std::uint64_t result) {
  TraceReport report;
  report.result = result;
  report.ops = session.ops();
  report.misses = session.misses();
  report.ipm = session.ipm();
  return report;
}

constexpr Vertex kUnvisited = static_cast<Vertex>(-1);

}  // namespace

TraceReport traced_dfs_cc(Vertex n, std::span<const WeightedEdge> edges,
                          const TraceConfig& config) {
  Session session(config.cache_words, config.block_words);

  // CSR construction is untraced setup (the baselines get the same favor);
  // the measured phase is the traversal, as in the BGL comparison.
  const graph::LocalGraph csr(n, edges);
  std::vector<std::uint32_t> raw_offsets(n + 1);
  std::vector<Vertex> raw_targets;
  raw_targets.reserve(2 * edges.size());
  std::size_t cursor = 0;
  for (Vertex v = 0; v < n; ++v) {
    raw_offsets[v] = static_cast<std::uint32_t>(cursor);
    for (const auto& nb : csr.neighbors(v)) {
      raw_targets.push_back(nb.vertex);
      ++cursor;
    }
  }
  raw_offsets[n] = static_cast<std::uint32_t>(cursor);

  Traced<std::uint32_t> offsets(std::move(raw_offsets), &session);
  Traced<Vertex> targets(std::move(raw_targets), &session);
  Traced<Vertex> label(n, &session, kUnvisited);

  std::vector<Vertex> stack;  // tiny working set; untraced
  Vertex components = 0;
  for (Vertex start = 0; start < n; ++start) {
    if (label[start] != kUnvisited) continue;
    stack.push_back(start);
    label[start] = components;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      const std::uint32_t begin = offsets[v];
      const std::uint32_t end = offsets[v + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const Vertex to = targets[i];
        if (label[to] == kUnvisited) {
          label[to] = components;
          stack.push_back(to);
        }
      }
    }
    ++components;
  }
  return report_of(session, components);
}

TraceReport traced_bgl_cc(Vertex n, std::span<const WeightedEdge> edges,
                          const TraceConfig& config) {
  Session session(config.cache_words, config.block_words);

  // adjacency_list<vecS, vecS>: one heap vector of (target descriptor,
  // edge property) per vertex — 2 words per out-edge entry, and each
  // vector begins at its own allocation (block-aligned region).
  std::vector<std::vector<Vertex>> adjacency(n);
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v) continue;
    adjacency[e.u].push_back(e.v);
    adjacency[e.v].push_back(e.u);
  }
  std::vector<std::uint64_t> list_base(n);
  for (Vertex v = 0; v < n; ++v)
    list_base[v] = session.allocate(2 * adjacency[v].size() + 2);

  // Separate property maps, as boost::connected_components uses.
  Traced<std::uint8_t> color(n, &session, 0);
  Traced<Vertex> component(n, &session, 0);

  std::vector<Vertex> stack;
  Vertex components = 0;
  for (Vertex start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    stack.push_back(start);
    color[start] = 1;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      component[v] = components;
      const auto& list = adjacency[v];
      for (std::size_t i = 0; i < list.size(); ++i) {
        session.touch(list_base[v] + 2 * i);  // (descriptor, property) pair
        const Vertex to = list[i];
        if (color[to] == 0) {
          color[to] = 1;
          stack.push_back(to);
        }
      }
    }
    ++components;
  }
  return report_of(session, components);
}

TraceReport traced_union_find_cc(Vertex n,
                                 std::span<const WeightedEdge> edges,
                                 const TraceConfig& config) {
  Session session(config.cache_words, config.block_words);
  const std::uint64_t edges_base = session.allocate(2 * edges.size() + 2);
  UnionFind dsu(n, &session);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    session.touch(edges_base + 2 * i);  // streaming read of the edge array
    dsu.unite(edges[i].u, edges[i].v);
  }
  return report_of(session, dsu.component_count());
}

TraceReport traced_stoer_wagner(Vertex n,
                                std::span<const WeightedEdge> edges,
                                const TraceConfig& config) {
  Session session(config.cache_words, config.block_words);
  // No cut exists below two vertices; without this the "best" sentinel
  // (Weight max) leaked out as the result.
  if (n < 2) return report_of(session, 0);

  Traced<Weight> matrix(static_cast<std::size_t>(n) * n, &session, 0);
  {
    auto& raw = matrix.raw();  // untraced build, matching the other setups
    for (const WeightedEdge& e : edges) {
      if (e.u == e.v) continue;
      raw[static_cast<std::size_t>(e.u) * n + e.v] += e.weight;
      raw[static_cast<std::size_t>(e.v) * n + e.u] += e.weight;
    }
  }
  Traced<Weight> key(n, &session, 0);
  std::vector<Vertex> slot(n);  // slot -> original supervertex id (compact)
  for (Vertex i = 0; i < n; ++i) slot[i] = i;

  Weight best = static_cast<Weight>(-1);
  Vertex active = n;
  std::vector<bool> in_order(n);
  while (active > 1) {
    std::fill(in_order.begin(), in_order.begin() + active, false);
    for (Vertex i = 0; i < active; ++i) key[slot[i]] = 0;

    Vertex previous = 0, last = 0;
    Weight last_key = 0;
    for (Vertex step = 0; step < active; ++step) {
      // Linear max-adjacency scan (the matrix variant of SW).
      Vertex pick = kUnvisited;
      Weight pick_key = 0;
      for (Vertex i = 0; i < active; ++i) {
        if (in_order[i]) continue;
        const Weight k = key[slot[i]];
        if (pick == kUnvisited || k > pick_key) {
          pick = i;
          pick_key = k;
        }
      }
      in_order[pick] = true;
      previous = last;
      last = pick;
      last_key = pick_key;
      const std::size_t row = static_cast<std::size_t>(slot[pick]) * n;
      for (Vertex i = 0; i < active; ++i) {
        if (in_order[i]) continue;
        key[slot[i]] = key[slot[i]] + matrix[row + slot[i]];
      }
    }
    best = std::min(best, last_key);

    // Merge `last` into `previous` (row/column add), compact `last` away.
    const std::size_t s_row = static_cast<std::size_t>(slot[previous]) * n;
    const std::size_t t_row = static_cast<std::size_t>(slot[last]) * n;
    for (Vertex i = 0; i < active; ++i) {
      const std::size_t column = slot[i];
      if (column == slot[previous] || column == slot[last]) continue;
      const Weight w = matrix[t_row + column];
      if (w == 0) continue;
      matrix[s_row + column] = matrix[s_row + column] + w;
      matrix[static_cast<std::size_t>(column) * n + slot[previous]] =
          matrix[s_row + column];
    }
    matrix[s_row + slot[last]] = 0;
    matrix[t_row + slot[previous]] = 0;
    slot[last] = slot[active - 1];
    --active;
  }
  return report_of(session, best);
}

// ---------------------------------------------------------------------------
// Traced Karger-Stein
// ---------------------------------------------------------------------------

namespace {

/// Dense contraction engine in the cache-oblivious layout [13]: rows over a
/// FIXED column space with a representative table instead of eager column
/// updates. Contracting v into u is two sequential row scans
/// (row_u += row_v) plus rep[v] = u; the strided column writes of the naive
/// matrix scheme — which would cost one miss per entry — never happen.
/// Readers fold entries through rep[] on the fly (rep fits in cache under
/// the tall-cache sizes we simulate). Self-loop weight is tracked per
/// representative so degrees stay exact.
struct TracedDense {
  Vertex n = 0;       // column stride (fixed)
  Vertex active = 0;  // number of live representatives
  Traced<Weight> matrix;
  Traced<Weight> degree;   // indexed by representative
  Traced<Vertex> rep;      // column -> representative (path compressed)
  std::vector<Vertex> alive;  // live representatives, untraced bookkeeping

  TracedDense(Vertex size, Session* session)
      : n(size),
        active(size),
        matrix(static_cast<std::size_t>(size) * size, session, 0),
        degree(size, session, 0),
        rep(size, session, 0),
        alive(size) {
    for (Vertex i = 0; i < size; ++i) {
      rep.raw()[i] = i;
      alive[i] = i;
    }
  }

  Weight twice_total = 0;  ///< sum of live degrees, maintained incrementally

  Vertex representative(Vertex column) {
    Vertex root = rep[column];
    while (rep[root] != root) root = rep[root];
    if (rep[column] != root) rep[column] = root;  // compress
    return root;
  }

  Weight total_weight() const { return twice_total / 2; }

  /// Merges representative v into representative u.
  void contract(Vertex u, Vertex v) {
    // w(u, v): one sequential pass over row u folding columns through rep.
    Weight uv = 0;
    const std::size_t row_u = static_cast<std::size_t>(u) * n;
    const std::size_t row_v = static_cast<std::size_t>(v) * n;
    for (Vertex j = 0; j < n; ++j) {
      const Weight w = matrix[row_u + j];
      if (w != 0 && representative(j) == v) uv += w;
    }
    // row_u += row_v: two streaming scans, no column traffic.
    for (Vertex j = 0; j < n; ++j) {
      const Weight w = matrix[row_v + j];
      if (w != 0) matrix[row_u + j] = matrix[row_u + j] + w;
    }
    rep[v] = u;
    degree[u] = degree[u] + degree[v] - 2 * uv;
    degree[v] = 0;
    // Degrees change from d(u) + d(v) to d(u) + d(v) - 2 w(u,v).
    twice_total -= 2 * uv;
    alive.erase(std::find(alive.begin(), alive.end(), v));
    --active;
  }

  void contract_random_edge(rng::Philox& gen) {
    Weight total = 0;
    for (const Vertex r : alive) total += degree[r];
    auto pick =
        static_cast<Weight>(gen.uniform_real() * static_cast<double>(total));
    Vertex u = alive.back();
    Weight running = 0;
    for (const Vertex r : alive) {
      running += degree[r];
      if (pick < running) {
        u = r;
        break;
      }
    }
    // Neighbor pick: scan row u, skipping self-loops via rep folding.
    pick = static_cast<Weight>(gen.uniform_real() *
                               static_cast<double>(degree[u]));
    running = 0;
    Vertex v = u;
    const std::size_t row_u = static_cast<std::size_t>(u) * n;
    for (Vertex j = 0; j < n; ++j) {
      const Weight w = matrix[row_u + j];
      if (w == 0) continue;
      const Vertex r = representative(j);
      if (r == u) continue;
      running += w;
      if (pick < running) {
        v = r;
        break;
      }
    }
    if (v == u) {  // FP rounding: take the last real neighbor
      for (Vertex j = n; j-- > 0;) {
        const Weight w = matrix[row_u + j];
        if (w == 0) continue;
        const Vertex r = representative(j);
        if (r != u) {
          v = r;
          break;
        }
      }
    }
    if (v != u) contract(u, v);
  }

  void contract_to(Vertex target, rng::Philox& gen) {
    while (active > target && total_weight() > 0) contract_random_edge(gen);
  }

  /// Folded, compacted copy with stride = active (the CO recursion's copy).
  TracedDense compact_copy(Session* session) const {
    // Column folding happens here, in one streaming pass per row; the
    // const_cast is confined to rep path compression, which is logically
    // non-mutating.
    auto& self = const_cast<TracedDense&>(*this);
    TracedDense out(active, session);
    std::vector<Vertex> dense_of(n, 0);
    for (Vertex i = 0; i < active; ++i) dense_of[alive[i]] = i;

    for (Vertex i = 0; i < active; ++i) {
      const Vertex r = alive[i];
      const std::size_t row = static_cast<std::size_t>(r) * n;
      const std::size_t out_row = static_cast<std::size_t>(i) * active;
      for (Vertex j = 0; j < n; ++j) {
        const Weight w = self.matrix[row + j];
        if (w == 0) continue;
        const Vertex target = self.representative(j);
        if (target == r) continue;  // drop self-loops
        out.matrix[out_row + dense_of[target]] =
            out.matrix[out_row + dense_of[target]] + w;
      }
      out.degree[i] = self.degree[r];
    }
    out.twice_total = twice_total;
    return out;
  }
};

Weight traced_exhaustive(TracedDense& g) {
  // Fold into a tiny compact matrix first; then enumerate partitions.
  std::vector<Weight> small(static_cast<std::size_t>(g.active) * g.active, 0);
  std::vector<Vertex> dense_of(g.n, 0);
  for (Vertex i = 0; i < g.active; ++i) dense_of[g.alive[i]] = i;
  for (Vertex i = 0; i < g.active; ++i) {
    const std::size_t row = static_cast<std::size_t>(g.alive[i]) * g.n;
    for (Vertex j = 0; j < g.n; ++j) {
      const Weight w = g.matrix[row + j];
      if (w == 0) continue;
      const Vertex target = g.representative(j);
      if (target == g.alive[i]) continue;
      small[static_cast<std::size_t>(i) * g.active + dense_of[target]] += w;
    }
  }
  const Vertex a = g.active;
  Weight best = static_cast<Weight>(-1);
  const std::uint32_t limit = 1u << (a - 1);
  for (std::uint32_t high = 1; high < limit; ++high) {
    const std::uint32_t mask = high << 1;
    Weight value = 0;
    for (Vertex i = 0; i < a; ++i) {
      if (!(mask & (1u << i))) continue;
      for (Vertex j = 0; j < a; ++j) {
        if (mask & (1u << j)) continue;
        value += small[static_cast<std::size_t>(i) * a + j];
      }
    }
    best = std::min(best, value);
  }
  return best;
}

Weight traced_recursive_contraction(TracedDense g, Session* session,
                                    rng::Philox& gen) {
  if (g.active >= 2 && g.total_weight() == 0) return 0;
  if (g.active <= 7) return traced_exhaustive(g);
  const auto target = static_cast<Vertex>(
      std::ceil(static_cast<double>(g.active) / std::sqrt(2.0)) + 1);

  // Both branches recurse on compacted copies (see karger_stein.cpp): the
  // folded layout cannot shrink in place, and compaction is the recursion's
  // per-level O(n^2) copy budget.
  TracedDense first = g.compact_copy(session);
  first.contract_to(target, gen);
  const Weight a = traced_recursive_contraction(first.compact_copy(session),
                                                session, gen);
  g.contract_to(target, gen);
  const Weight b =
      traced_recursive_contraction(g.compact_copy(session), session, gen);
  return std::min(a, b);
}

TracedDense traced_dense_from_edges(Vertex n,
                                    std::span<const WeightedEdge> edges,
                                    Session* session) {
  TracedDense g(n, session);
  auto& matrix = g.matrix.raw();  // untraced build
  auto& degree = g.degree.raw();
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v) continue;
    matrix[static_cast<std::size_t>(e.u) * n + e.v] += e.weight;
    matrix[static_cast<std::size_t>(e.v) * n + e.u] += e.weight;
    degree[e.u] += e.weight;
    degree[e.v] += e.weight;
    g.twice_total += 2 * e.weight;
  }
  return g;
}

/// Bottom-up merge sort over traced edge arrays: real CO-model sort costs,
/// Theta((m/B) log(m/M)) misses.
void traced_merge_sort(Traced<WeightedEdge>& data, Session* session) {
  const std::size_t size = data.size();
  Traced<WeightedEdge> buffer(size, session);
  const graph::EndpointLess less;
  for (std::size_t width = 1; width < size; width *= 2) {
    for (std::size_t lo = 0; lo < size; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, size);
      const std::size_t hi = std::min(lo + 2 * width, size);
      std::size_t a = lo, b = mid, out = lo;
      while (a < mid && b < hi) {
        const WeightedEdge ea = data[a];
        const WeightedEdge eb = data[b];
        if (less(eb, ea)) {
          buffer[out++] = eb;
          ++b;
        } else {
          buffer[out++] = ea;
          ++a;
        }
      }
      while (a < mid) buffer[out++] = data[a++];
      while (b < hi) buffer[out++] = data[b++];
    }
    for (std::size_t i = 0; i < size; ++i) data[i] = buffer[i];
  }
}

}  // namespace

TraceReport traced_karger_stein(Vertex n, std::span<const WeightedEdge> edges,
                                std::uint32_t trace_runs, std::uint64_t seed,
                                const TraceConfig& config) {
  Session session(config.cache_words, config.block_words);
  const TracedDense base = traced_dense_from_edges(n, edges, &session);
  Weight best = static_cast<Weight>(-1);
  for (std::uint32_t run = 0; run < trace_runs; ++run) {
    rng::Philox gen(seed, run + 1);
    // Cache state deliberately persists across runs, as in a real execution.
    best = std::min(best, traced_recursive_contraction(
                              base.compact_copy(&session), &session, gen));
  }
  return report_of(session, best);
}

TraceReport traced_camc_min_cut(Vertex n, std::span<const WeightedEdge> edges,
                                std::uint32_t trace_trials, std::uint64_t seed,
                                double sigma, const TraceConfig& config) {
  Session session(config.cache_words, config.block_words);
  const auto t0 = static_cast<Vertex>(std::min<double>(
      n, std::ceil(std::sqrt(static_cast<double>(
             std::max<std::size_t>(edges.size(), 1)))) +
             1));

  Weight best = static_cast<Weight>(-1);
  for (std::uint32_t trial = 0; trial < trace_trials; ++trial) {
    rng::Philox gen(seed, 0x77000 + trial);
    Traced<WeightedEdge> current(
        std::vector<WeightedEdge>(edges.begin(), edges.end()), &session);
    Vertex n_cur = n;

    // Eager Step on the traced edge array.
    while (n_cur > t0 && current.size() > 0) {
      const auto s = static_cast<std::uint64_t>(
          std::ceil(std::pow(static_cast<double>(n_cur), 1.0 + sigma)));

      // Build the weight table with a streaming pass, then draw s samples
      // (random touches into the edge array — the honest access pattern).
      std::vector<double> weights(current.size());
      for (std::size_t i = 0; i < current.size(); ++i)
        weights[i] = static_cast<double>(current[i].weight);
      const rng::AliasTable table(weights);
      UnionFind dsu(n_cur, &session);
      for (std::uint64_t k = 0; k < s; ++k) {
        if (dsu.component_count() == t0) break;
        const WeightedEdge e = current[table.sample(gen)];
        dsu.unite(e.u, e.v);
      }
      std::vector<Vertex> mapping = dsu.labels();
      const Vertex components = graph::normalize_labels(mapping);
      if (components == n_cur) continue;

      // Rename (streaming) + traced merge sort + combine (streaming).
      Traced<Vertex> map(std::move(mapping), &session);
      std::vector<WeightedEdge> renamed_raw;
      renamed_raw.reserve(current.size());
      for (std::size_t i = 0; i < current.size(); ++i) {
        const WeightedEdge e = current[i];
        const Vertex u = map[e.u];
        const Vertex v = map[e.v];
        if (u == v) continue;
        renamed_raw.push_back(WeightedEdge{u, v, e.weight}.canonical());
      }
      Traced<WeightedEdge> renamed(std::move(renamed_raw), &session);
      traced_merge_sort(renamed, &session);

      std::vector<WeightedEdge> combined_raw;
      for (std::size_t i = 0; i < renamed.size(); ++i) {
        const WeightedEdge e = renamed[i];
        if (!combined_raw.empty() && same_endpoints(combined_raw.back(), e))
          combined_raw.back().weight += e.weight;
        else
          combined_raw.push_back(e);
      }
      current = Traced<WeightedEdge>(std::move(combined_raw), &session);
      n_cur = components;
    }
    if (n_cur > t0) {
      best = 0;  // ran out of edges: disconnected
      continue;
    }

    // Recursive Step on traced dense matrices.
    std::vector<WeightedEdge> rest;
    rest.reserve(current.size());
    for (std::size_t i = 0; i < current.size(); ++i) rest.push_back(current[i]);
    TracedDense dense = traced_dense_from_edges(n_cur, rest, &session);
    best = std::min(best,
                    traced_recursive_contraction(std::move(dense), &session,
                                                 gen));
  }
  return report_of(session, best);
}

}  // namespace camc::seq
