#pragma once

// Stoer-Wagner deterministic global minimum cut, O(nm + n^2 log n).
//
// The paper's sequential deterministic baseline ("SW", via BGL in the
// paper; §5.3). Maximum-adjacency search with a lazy-deletion binary heap
// over hash-map adjacencies, merging the last two vertices of each phase.

#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace camc::seq {

struct CutResult {
  graph::Weight value = 0;
  /// Original vertices on one side of the cut. For a disconnected graph the
  /// value is 0 and the side is one connected component.
  std::vector<graph::Vertex> side;
};

/// Exact minimum cut. Requires n >= 2; loops are ignored.
CutResult stoer_wagner_min_cut(graph::Vertex n,
                               std::span<const graph::WeightedEdge> edges);

}  // namespace camc::seq
