#pragma once

// Cache-traced variants of the sequential algorithms, for the paper's
// cache-efficiency experiments (Figures 4a, 8, 9). Each function runs the
// real algorithm against Traced arrays wired to a cachesim::Session, so the
// reported misses are genuine CO-model (LRU) miss counts of the actual
// access pattern, and ops is the stand-in for the completed-instructions
// counter.
//
// Randomized algorithms (Karger-Stein, camc min cut) cost misses linearly
// in their run/trial count; to keep measurement time sane the caller
// chooses how many runs to trace and scales (see trace_runs parameters and
// the scaled_* fields).

#include <cstdint>
#include <span>

#include "cachesim/session.hpp"
#include "graph/edge.hpp"

namespace camc::seq {

struct TraceReport {
  std::uint64_t result = 0;  ///< components or cut value
  std::uint64_t ops = 0;
  std::uint64_t misses = 0;
  double ipm = 0;
};

/// Geometry for the traced runs. Defaults mirror Session's defaults.
struct TraceConfig {
  std::uint64_t cache_words = 1ull << 18;  ///< M
  std::uint64_t block_words = 8;           ///< B
};

/// DFS connected components over traced CSR arrays (an idealized
/// traversal baseline with perfectly packed adjacency).
TraceReport traced_dfs_cc(graph::Vertex n,
                          std::span<const graph::WeightedEdge> edges,
                          const TraceConfig& config = {});

/// DFS connected components in the Boost Graph Library's actual memory
/// layout (the paper's BGL baseline): adjacency_list<vecS, vecS> keeps one
/// separately allocated out-edge vector per vertex with 8-byte descriptors
/// plus property, and the algorithm uses separate color and component
/// property maps. The scattered allocations and fatter records are what
/// cost BGL its ~3x miss penalty in Figure 4a.
TraceReport traced_bgl_cc(graph::Vertex n,
                          std::span<const graph::WeightedEdge> edges,
                          const TraceConfig& config = {});

/// Union-find connected components (the Galois sequential baseline).
TraceReport traced_union_find_cc(graph::Vertex n,
                                 std::span<const graph::WeightedEdge> edges,
                                 const TraceConfig& config = {});

/// Stoer-Wagner over a traced adjacency matrix (maximum adjacency search).
/// O(n^3) work: intended for small n.
TraceReport traced_stoer_wagner(graph::Vertex n,
                                std::span<const graph::WeightedEdge> edges,
                                const TraceConfig& config = {});

/// Karger-Stein recursive contraction over traced compact matrices.
/// Traces `trace_runs` independent runs; ops/misses are per the traced runs
/// (multiply by full_runs / trace_runs for whole-algorithm estimates).
TraceReport traced_karger_stein(graph::Vertex n,
                                std::span<const graph::WeightedEdge> edges,
                                std::uint32_t trace_runs, std::uint64_t seed,
                                const TraceConfig& config = {});

/// The paper's minimum cut run sequentially (Eager Step on a traced edge
/// array with a traced merge sort, Recursive Step on traced matrices).
/// Traces `trace_trials` trials.
TraceReport traced_camc_min_cut(graph::Vertex n,
                                std::span<const graph::WeightedEdge> edges,
                                std::uint32_t trace_trials, std::uint64_t seed,
                                double sigma = 0.2,
                                const TraceConfig& config = {});

}  // namespace camc::seq
