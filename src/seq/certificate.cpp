#include "seq/certificate.hpp"

#include <stdexcept>

#include "graph/contraction_ref.hpp"
#include "seq/union_find.hpp"

namespace camc::seq {

using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

CertificateResult sparse_certificate(Vertex n,
                                     std::span<const WeightedEdge> edges,
                                     Weight k) {
  if (k == 0) throw std::invalid_argument("sparse_certificate: k == 0");

  // Combine parallel input edges first so residual bookkeeping is per pair.
  std::vector<Vertex> identity(n);
  for (Vertex v = 0; v < n; ++v) identity[v] = v;
  std::vector<WeightedEdge> combined =
      graph::contract_edges_reference(edges, identity);

  std::vector<Weight> residual(combined.size());
  std::vector<Weight> certified(combined.size(), 0);
  for (std::size_t i = 0; i < combined.size(); ++i)
    residual[i] = combined[i].weight;

  CertificateResult result;
  for (Weight round = 0; round < k;) {
    // Maximal spanning forest over edges with residual weight. The forest
    // only depends on WHICH edges still have residual, so consecutive
    // rounds rebuild the same forest until some forest edge is exhausted.
    // Batch those rounds: move t units at once, where t is the smallest
    // residual on the forest (capped by the rounds remaining). This keeps
    // the certificate bit-identical to the unit-round loop but makes the
    // runtime independent of the weights (k can be ~2^60 for inputs near
    // the Weight range; the unit loop never terminated on those).
    UnionFind dsu(n);
    std::vector<std::size_t> forest;
    bool any = false;
    for (std::size_t i = 0; i < combined.size(); ++i) {
      if (residual[i] == 0) continue;
      any = true;
      if (dsu.unite(combined[i].u, combined[i].v)) forest.push_back(i);
    }
    if (!any) break;
    Weight t = k - round;  // stays k - round when only cycle/self-loop
                           // residue is left (nothing to move, burn rounds)
    for (const std::size_t i : forest) t = std::min(t, residual[i]);
    for (const std::size_t i : forest) {
      residual[i] -= t;
      certified[i] += t;
    }
    round += t;
    result.rounds += t;
  }

  for (std::size_t i = 0; i < combined.size(); ++i) {
    if (certified[i] == 0) continue;
    result.edges.push_back(
        WeightedEdge{combined[i].u, combined[i].v, certified[i]});
  }
  return result;
}

}  // namespace camc::seq
