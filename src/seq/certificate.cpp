#include "seq/certificate.hpp"

#include <stdexcept>

#include "graph/contraction_ref.hpp"
#include "seq/union_find.hpp"

namespace camc::seq {

using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

CertificateResult sparse_certificate(Vertex n,
                                     std::span<const WeightedEdge> edges,
                                     Weight k) {
  if (k == 0) throw std::invalid_argument("sparse_certificate: k == 0");

  // Combine parallel input edges first so residual bookkeeping is per pair.
  std::vector<Vertex> identity(n);
  for (Vertex v = 0; v < n; ++v) identity[v] = v;
  std::vector<WeightedEdge> combined =
      graph::contract_edges_reference(edges, identity);

  std::vector<Weight> residual(combined.size());
  std::vector<Weight> certified(combined.size(), 0);
  for (std::size_t i = 0; i < combined.size(); ++i)
    residual[i] = combined[i].weight;

  CertificateResult result;
  for (Weight round = 0; round < k; ++round) {
    // Maximal spanning forest over edges with residual weight.
    UnionFind dsu(n);
    bool any = false;
    for (std::size_t i = 0; i < combined.size(); ++i) {
      if (residual[i] == 0) continue;
      any = true;
      if (dsu.unite(combined[i].u, combined[i].v)) {
        // Forest edge: move one unit of weight into the certificate.
        --residual[i];
        ++certified[i];
      }
    }
    if (!any) break;
    ++result.rounds;
  }

  for (std::size_t i = 0; i < combined.size(); ++i) {
    if (certified[i] == 0) continue;
    result.edges.push_back(
        WeightedEdge{combined[i].u, combined[i].v, certified[i]});
  }
  return result;
}

}  // namespace camc::seq
