#pragma once

// Sequential connected-components baselines.
//
// dfs_components: the linear-time graph traversal BGL's
// connected_components performs (the paper's sequential baseline).
// union_find_components: per-edge union-find, the sequential behaviour of
// the Galois baseline.

#include <span>
#include <vector>

#include "graph/edge.hpp"
#include "graph/local_graph.hpp"

namespace camc::seq {

/// Component label per vertex via iterative depth-first traversal; labels
/// are dense in [0, #components).
std::vector<graph::Vertex> dfs_components(const graph::LocalGraph& g);

/// Component label per vertex via union-find over the edge list; labels are
/// component roots (not dense). `n` is the vertex count.
std::vector<graph::Vertex> union_find_components(
    graph::Vertex n, std::span<const graph::WeightedEdge> edges);

/// Number of distinct labels.
graph::Vertex component_count(std::span<const graph::Vertex> labels);

/// True when `labels` describe a single component (or the graph is empty).
bool single_component(std::span<const graph::Vertex> labels);

/// True iff both labelings induce the same partition of the vertex set.
bool same_partition(std::span<const graph::Vertex> a,
                    std::span<const graph::Vertex> b);

}  // namespace camc::seq
