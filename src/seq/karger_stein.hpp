#pragma once

// Sequential Karger-Stein recursive contraction [25], in the compact
// adjacency-matrix layout of the cache-oblivious variant [13].
//
// One run: contract randomly to ceil(active / sqrt(2)) + 1 vertices, recurse
// twice on independent copies, brute-force below a constant size; a run
// finds a fixed minimum cut with probability 1/Omega(log n) (Lemma 2.2).
// `karger_stein_min_cut` repeats runs until the requested success
// probability is met (O(log^2 n) runs for w.h.p. correctness).
//
// This doubles as the leaf solver of the parallel Recursive Step (§4.3).

#include <cstdint>
#include <span>

#include "graph/dense_graph.hpp"
#include "graph/edge.hpp"
#include "graph/folded_dense.hpp"
#include "rng/philox.hpp"
#include "seq/stoer_wagner.hpp"

namespace camc::seq {

/// Exhaustive minimum cut over the active vertices of `g` (active <= limit,
/// default 7, i.e. <= 64 partitions). Used as a test oracle via
/// brute_force_min_cut below.
CutResult dense_min_cut_exhaustive(const graph::DenseGraph& g);

/// One recursive-contraction run over the cache-oblivious folded
/// representation; returns its best cut.
CutResult recursive_contraction_run(graph::FoldedDense g, rng::Philox& gen);

struct KargerSteinOptions {
  /// Target probability that the returned cut is minimum.
  double success_probability = 0.9;
  /// Per-run success probability is modeled as 1 / (multiplier * log2 n);
  /// raise the multiplier for more conservative run counts.
  double run_probability_multiplier = 1.0;
  /// Hard cap on runs, as a safety valve for tiny success targets.
  std::uint32_t max_runs = 10'000;
};

/// Number of independent runs needed for the options' success target on an
/// n-vertex graph.
std::uint32_t karger_stein_run_count(graph::Vertex n,
                                     const KargerSteinOptions& options = {});

/// Exact-with-probability minimum cut. Requires n >= 2.
CutResult karger_stein_min_cut(graph::Vertex n,
                               std::span<const graph::WeightedEdge> edges,
                               std::uint64_t seed,
                               const KargerSteinOptions& options = {});

/// Exhaustive minimum cut over all 2^(n-1) partitions (test oracle);
/// requires 2 <= n <= 24.
CutResult brute_force_min_cut(graph::Vertex n,
                              std::span<const graph::WeightedEdge> edges);

/// All distinct minimum cuts, each as the side not containing vertex 0
/// (sorted); exhaustive oracle, requires 2 <= n <= 20.
std::vector<std::vector<graph::Vertex>> brute_force_all_min_cuts(
    graph::Vertex n, std::span<const graph::WeightedEdge> edges);

}  // namespace camc::seq
