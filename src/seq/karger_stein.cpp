#include "seq/karger_stein.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace camc::seq {

using graph::DenseGraph;
using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

namespace {

constexpr Vertex kBaseCaseSize = 7;

/// Cut value of the active-vertex subset described by `mask`.
Weight cut_of_mask(const DenseGraph& g, std::uint32_t mask) {
  Weight value = 0;
  const Vertex a = g.active_vertices();
  for (Vertex i = 0; i < a; ++i) {
    if (!(mask & (1u << i))) continue;
    for (Vertex j = 0; j < a; ++j) {
      if (mask & (1u << j)) continue;
      value = graph::checked_add(value, g.weight(i, j));
    }
  }
  return value;
}

}  // namespace

CutResult dense_min_cut_exhaustive(const DenseGraph& g) {
  const Vertex a = g.active_vertices();
  if (a < 2)
    throw std::invalid_argument("dense_min_cut_exhaustive: fewer than 2 vertices");
  if (a > 24)
    throw std::invalid_argument("dense_min_cut_exhaustive: too many vertices");

  CutResult best;
  best.value = static_cast<Weight>(-1);
  std::uint32_t best_mask = 1;
  // Fix active vertex 0 outside the cut side: masks over vertices 1..a-1.
  const std::uint32_t limit = 1u << (a - 1);
  for (std::uint32_t high = 1; high < limit; ++high) {
    const std::uint32_t mask = high << 1;
    const Weight value = cut_of_mask(g, mask);
    if (value < best.value) {
      best.value = value;
      best_mask = mask;
    }
  }
  for (Vertex i = 0; i < a; ++i) {
    if (!(best_mask & (1u << i))) continue;
    best.side.insert(best.side.end(), g.members(i).begin(),
                     g.members(i).end());
  }
  return best;
}

namespace {

/// Base case on the folded representation: enumerate all partitions of the
/// (at most kBaseCaseSize) live representatives. Ties are broken uniformly
/// at random (reservoir sampling): a run then returns a uniformly random
/// one of the co-minimal cuts it saw, which is what lets repeated trials
/// enumerate ALL minimum cuts (Lemma 4.3) instead of a biased subset.
CutResult folded_exhaustive(const graph::FoldedDense& g, rng::Philox& gen) {
  const Vertex a = g.active_vertices();
  const std::vector<Weight> matrix = g.folded_matrix();
  CutResult best;
  best.value = static_cast<Weight>(-1);
  std::uint32_t best_mask = 1;
  std::uint64_t ties = 0;
  const std::uint32_t limit = 1u << (a - 1);
  for (std::uint32_t high = 1; high < limit; ++high) {
    const std::uint32_t mask = high << 1;
    Weight value = 0;
    for (Vertex i = 0; i < a; ++i) {
      if (!(mask & (1u << i))) continue;
      for (Vertex j = 0; j < a; ++j) {
        if (mask & (1u << j)) continue;
        value = graph::checked_add(
            value, matrix[static_cast<std::size_t>(i) * a + j]);
      }
    }
    if (value < best.value) {
      best.value = value;
      best_mask = mask;
      ties = 1;
    } else if (value == best.value) {
      ++ties;
      if (gen.bounded(ties) == 0) best_mask = mask;
    }
  }
  for (Vertex i = 0; i < a; ++i) {
    if (!(best_mask & (1u << i))) continue;
    const auto& merged = g.members(g.alive()[i]);
    best.side.insert(best.side.end(), merged.begin(), merged.end());
  }
  return best;
}

}  // namespace

CutResult recursive_contraction_run(graph::FoldedDense g, rng::Philox& gen) {
  const Vertex a = g.active_vertices();
  // An edgeless multi-vertex graph is disconnected: the first live group's
  // members have no edge to the rest, so they are a zero-weight cut. (Also
  // prevents the recursion from spinning when contraction cannot progress.)
  if (a >= 2 && g.total_weight() == 0)
    return CutResult{0, g.members(g.alive().front())};
  if (a <= kBaseCaseSize) return folded_exhaustive(g, gen);

  const auto target = static_cast<Vertex>(
      std::ceil(static_cast<double>(a) / std::sqrt(2.0)) + 1);

  // Both branches recurse on compacted copies: the folded representation
  // cannot shrink in place (no column moves), so compaction is what keeps
  // per-contraction scans at O(active) — the copy cost is the recursion's
  // O(n^2)-per-level budget.
  graph::FoldedDense first = g.compact_copy();
  first.contract_to(target, gen);
  CutResult best = recursive_contraction_run(first.compact_copy(), gen);

  g.contract_to(target, gen);
  CutResult second = recursive_contraction_run(g.compact_copy(), gen);

  // Random tie-breaking between the branches, for the same reason as in
  // folded_exhaustive.
  if (second.value < best.value ||
      (second.value == best.value && gen.bernoulli(0.5)))
    return second;
  return best;
}

std::uint32_t karger_stein_run_count(Vertex n,
                                     const KargerSteinOptions& options) {
  if (n < 2) return 1;
  const double q =
      1.0 / std::max(1.0, options.run_probability_multiplier *
                              std::log2(static_cast<double>(n)));
  const double failure = 1.0 - options.success_probability;
  const double runs = std::log(std::max(failure, 1e-12)) / std::log1p(-q);
  return static_cast<std::uint32_t>(std::clamp(
      std::ceil(runs), 1.0, static_cast<double>(options.max_runs)));
}

CutResult karger_stein_min_cut(Vertex n,
                               std::span<const WeightedEdge> edges,
                               std::uint64_t seed,
                               const KargerSteinOptions& options) {
  if (n < 2) throw std::invalid_argument("karger_stein: n < 2");
  const graph::FoldedDense base(n, edges);
  const std::uint32_t runs = karger_stein_run_count(n, options);

  CutResult best;
  best.value = static_cast<Weight>(-1);
  for (std::uint32_t run = 0; run < runs; ++run) {
    rng::Philox gen(seed, /*stream=*/run + 1);
    CutResult candidate = recursive_contraction_run(base, gen);
    if (candidate.value < best.value) best = std::move(candidate);
    if (best.value == 0) break;  // disconnected: cannot improve
  }
  return best;
}

CutResult brute_force_min_cut(Vertex n,
                              std::span<const WeightedEdge> edges) {
  if (n < 2 || n > 24)
    throw std::invalid_argument("brute_force_min_cut: need 2 <= n <= 24");
  return dense_min_cut_exhaustive(DenseGraph(n, edges));
}

std::vector<std::vector<Vertex>> brute_force_all_min_cuts(
    Vertex n, std::span<const WeightedEdge> edges) {
  if (n < 2 || n > 20)
    throw std::invalid_argument("brute_force_all_min_cuts: need 2 <= n <= 20");
  const DenseGraph g(n, edges);

  const auto value_of = [&](std::uint32_t mask) {
    Weight value = 0;
    for (Vertex i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      for (Vertex j = 0; j < n; ++j) {
        if (mask & (1u << j)) continue;
        value = graph::checked_add(value, g.weight(i, j));
      }
    }
    return value;
  };

  // Vertex 0 fixed outside the reported side, so each cut appears once.
  Weight best = static_cast<Weight>(-1);
  std::vector<std::vector<Vertex>> cuts;
  const std::uint32_t limit = 1u << (n - 1);
  for (std::uint32_t high = 1; high < limit; ++high) {
    const std::uint32_t mask = high << 1;
    const Weight value = value_of(mask);
    if (value > best) continue;
    if (value < best) {
      best = value;
      cuts.clear();
    }
    std::vector<Vertex> side;
    for (Vertex v = 1; v < n; ++v)
      if (mask & (1u << v)) side.push_back(v);
    cuts.push_back(std::move(side));
  }
  return cuts;
}

}  // namespace camc::seq
