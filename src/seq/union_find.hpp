#pragma once

// Disjoint-set union with path halving and union by size.
//
// Used as (a) the root-side connected-components kernel of Iterated
// Sampling's prefix selection, (b) the sequential Galois-stand-in CC
// baseline, and (c) a test oracle.

#include <cstdint>
#include <numeric>
#include <vector>

#include "cachesim/session.hpp"
#include "graph/edge.hpp"

namespace camc::seq {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n, cachesim::Session* trace = nullptr)
      : parent_(n), size_(n, 1), components_(n), trace_(trace) {
    std::iota(parent_.begin(), parent_.end(), graph::Vertex{0});
    if (trace_ != nullptr) base_ = trace_->allocate(n);
  }

  graph::Vertex find(graph::Vertex x) noexcept {
    while (touch(x), parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true when the union merged two distinct components.
  bool unite(graph::Vertex a, graph::Vertex b) noexcept {
    graph::Vertex ra = find(a), rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --components_;
    return true;
  }

  bool connected(graph::Vertex a, graph::Vertex b) noexcept {
    return find(a) == find(b);
  }

  std::size_t component_count() const noexcept { return components_; }
  std::size_t size() const noexcept { return parent_.size(); }

  /// Component label (root vertex) per vertex.
  std::vector<graph::Vertex> labels() {
    std::vector<graph::Vertex> out(parent_.size());
    for (std::size_t v = 0; v < parent_.size(); ++v)
      out[v] = find(static_cast<graph::Vertex>(v));
    return out;
  }

 private:
  void touch(graph::Vertex x) const noexcept {
    // Parent and size words of a vertex live in one 8-byte word for the
    // purposes of the cache model.
    if (trace_ != nullptr) trace_->touch(base_ + x);
  }

  std::vector<graph::Vertex> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
  cachesim::Session* trace_ = nullptr;
  std::uint64_t base_ = 0;
};

}  // namespace camc::seq
