#include "seq/connected_components.hpp"

#include <unordered_map>
#include <unordered_set>

#include "seq/union_find.hpp"

namespace camc::seq {

std::vector<graph::Vertex> dfs_components(const graph::LocalGraph& g) {
  const graph::Vertex n = g.vertex_count();
  constexpr graph::Vertex kUnvisited = static_cast<graph::Vertex>(-1);
  std::vector<graph::Vertex> label(n, kUnvisited);
  std::vector<graph::Vertex> stack;
  graph::Vertex next_label = 0;

  for (graph::Vertex start = 0; start < n; ++start) {
    if (label[start] != kUnvisited) continue;
    stack.push_back(start);
    label[start] = next_label;
    while (!stack.empty()) {
      const graph::Vertex v = stack.back();
      stack.pop_back();
      for (const auto& nb : g.neighbors(v)) {
        if (label[nb.vertex] == kUnvisited) {
          label[nb.vertex] = next_label;
          stack.push_back(nb.vertex);
        }
      }
    }
    ++next_label;
  }
  return label;
}

std::vector<graph::Vertex> union_find_components(
    graph::Vertex n, std::span<const graph::WeightedEdge> edges) {
  UnionFind dsu(n);
  for (const graph::WeightedEdge& e : edges) dsu.unite(e.u, e.v);
  return dsu.labels();
}

graph::Vertex component_count(std::span<const graph::Vertex> labels) {
  std::unordered_set<graph::Vertex> distinct(labels.begin(), labels.end());
  return static_cast<graph::Vertex>(distinct.size());
}

bool single_component(std::span<const graph::Vertex> labels) {
  return labels.empty() || component_count(labels) == 1;
}

bool same_partition(std::span<const graph::Vertex> a,
                    std::span<const graph::Vertex> b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<graph::Vertex, graph::Vertex> forward, backward;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [fit, finserted] = forward.emplace(a[v], b[v]);
    if (!finserted && fit->second != b[v]) return false;
    const auto [bit, binserted] = backward.emplace(b[v], a[v]);
    if (!binserted && bit->second != a[v]) return false;
  }
  return true;
}

}  // namespace camc::seq
