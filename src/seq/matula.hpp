#pragma once

// Matula's deterministic (2 + epsilon)-approximate minimum cut, built on
// the Nagamochi-Ibaraki certificate (certificate.hpp).
//
// Loop: record the minimum weighted degree delta (always an upper bound on
// the cut); build a k-certificate for k = ceil(delta / (2 + epsilon));
// every edge NOT needed by the certificate has local connectivity >= k, so
// if the true minimum cut is below k such an edge crosses no minimum cut
// and is safe to contract. Repeat on the contracted graph until nothing
// contracts. The smallest delta seen is within (2 + epsilon) of the
// minimum cut.
//
// This is the deterministic counterpart of the paper's randomized
// O(log n)-approximation (§3.3): a much tighter factor, but inherently
// sequential — the comparison is drawn in bench_ablation_appmc.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace camc::seq {

struct MatulaResult {
  /// Upper bound on the minimum cut, within (2 + epsilon) of it.
  graph::Weight estimate = 0;
  std::uint32_t iterations = 0;
};

/// Requires n >= 2 and epsilon > 0. Returns estimate 0 for disconnected
/// graphs (an isolated super-vertex appears as a zero degree).
MatulaResult matula_approx_min_cut(graph::Vertex n,
                                   std::span<const graph::WeightedEdge> edges,
                                   double epsilon = 0.5);

}  // namespace camc::seq
