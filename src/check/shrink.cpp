#include "check/shrink.hpp"

#include <algorithm>
#include <vector>

namespace camc::check {

namespace {

struct Budget {
  const StillFails& predicate;
  ShrinkStats* stats;
  std::size_t remaining;

  /// Runs the predicate under the call budget; an exhausted budget reports
  /// "no longer fails" so every pass terminates promptly.
  bool fails(const TestCase& tc) {
    if (remaining == 0) return false;
    --remaining;
    if (stats != nullptr) ++stats->predicate_calls;
    return predicate(tc);
  }
};

/// ddmin-style pass: remove contiguous edge chunks, halving the chunk size.
bool pass_drop_edges(TestCase& tc, Budget& budget) {
  bool reduced = false;
  for (std::size_t chunk = std::max<std::size_t>(tc.edges.size() / 2, 1);
       chunk >= 1; chunk /= 2) {
    for (std::size_t at = 0; at < tc.edges.size();) {
      TestCase candidate = tc;
      const std::size_t end = std::min(at + chunk, candidate.edges.size());
      candidate.edges.erase(candidate.edges.begin() +
                                static_cast<std::ptrdiff_t>(at),
                            candidate.edges.begin() +
                                static_cast<std::ptrdiff_t>(end));
      if (budget.fails(candidate)) {
        tc = std::move(candidate);
        reduced = true;
        // Do not advance: the next chunk slid into this position.
      } else {
        at += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return reduced;
}

/// Deletes vertex `v`: incident edges dropped, ids above `v` shifted down.
TestCase without_vertex(const TestCase& tc, Vertex v) {
  TestCase out = tc;
  out.n = tc.n - 1;
  out.edges.clear();
  for (const WeightedEdge& e : tc.edges) {
    if (e.u == v || e.v == v) continue;
    out.edges.push_back({e.u > v ? e.u - 1 : e.u, e.v > v ? e.v - 1 : e.v,
                         e.weight});
  }
  return out;
}

/// Merges vertex `v` into vertex 0 (keeps parallel edges, drops loops).
TestCase merged_into_zero(const TestCase& tc, Vertex v) {
  TestCase out = without_vertex(tc, v);
  for (const WeightedEdge& e : tc.edges) {
    if (e.u != v && e.v != v) continue;
    const Vertex other = e.u == v ? e.v : e.u;
    if (other == v || other == 0) continue;  // became a loop on 0
    out.edges.push_back({Vertex{0}, other > v ? other - 1 : other, e.weight});
  }
  return out;
}

bool pass_remove_vertices(TestCase& tc, Budget& budget) {
  bool reduced = false;
  for (Vertex v = tc.n; v-- > 0 && tc.n > 1;) {
    if (v >= tc.n) continue;  // n shrank under us
    TestCase candidate = without_vertex(tc, v);
    if (budget.fails(candidate)) {
      tc = std::move(candidate);
      reduced = true;
      continue;
    }
    if (v == 0) continue;
    candidate = merged_into_zero(tc, v);
    if (budget.fails(candidate)) {
      tc = std::move(candidate);
      reduced = true;
    }
  }
  return reduced;
}

bool pass_simplify_weights(TestCase& tc, Budget& budget) {
  bool reduced = false;
  // All-units first: one predicate call often finishes the job.
  if (std::any_of(tc.edges.begin(), tc.edges.end(),
                  [](const WeightedEdge& e) { return e.weight != 1; })) {
    TestCase candidate = tc;
    for (WeightedEdge& e : candidate.edges) e.weight = 1;
    if (budget.fails(candidate)) {
      tc = std::move(candidate);
      return true;
    }
  }
  for (std::size_t i = 0; i < tc.edges.size(); ++i) {
    while (tc.edges[i].weight > 1) {
      TestCase candidate = tc;
      candidate.edges[i].weight /= 2;
      if (!budget.fails(candidate)) break;
      tc = std::move(candidate);
      reduced = true;
    }
  }
  return reduced;
}

/// Removes ids no edge touches (keeps at least one vertex).
bool pass_compact_ids(TestCase& tc, Budget& budget) {
  std::vector<bool> used(tc.n, false);
  for (const WeightedEdge& e : tc.edges) used[e.u] = used[e.v] = true;
  TestCase candidate = tc;
  candidate.edges.clear();
  std::vector<Vertex> remap(tc.n, 0);
  Vertex next = 0;
  for (Vertex v = 0; v < tc.n; ++v)
    if (used[v]) remap[v] = next++;
  if (next == 0) next = 1;  // keep a vertex even for edgeless instances
  if (next >= tc.n) return false;
  candidate.n = next;
  for (const WeightedEdge& e : tc.edges)
    candidate.edges.push_back({remap[e.u], remap[e.v], e.weight});
  if (!budget.fails(candidate)) return false;
  tc = std::move(candidate);
  return true;
}

}  // namespace

TestCase shrink(TestCase failing, const StillFails& still_fails,
                ShrinkStats* stats, std::size_t max_predicate_calls) {
  Budget budget{still_fails, stats, max_predicate_calls};
  bool progress = true;
  while (progress && budget.remaining > 0) {
    if (stats != nullptr) ++stats->rounds;
    progress = false;
    progress |= pass_drop_edges(failing, budget);
    progress |= pass_remove_vertices(failing, budget);
    progress |= pass_simplify_weights(failing, budget);
    progress |= pass_compact_ids(failing, budget);
  }
  failing.origin += "+shrunk";
  return failing;
}

}  // namespace camc::check
