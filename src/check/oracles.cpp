#include "check/oracles.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "bcc/bcc.hpp"
#include "bcc/reference.hpp"
#include "bsp/machine.hpp"
#include "core/approx_mincut.hpp"
#include "core/baselines.hpp"
#include "core/cc.hpp"
#include "core/mincut.hpp"
#include "core/preprocess.hpp"
#include "dyn/campaign.hpp"
#include "graph/contraction_ref.hpp"
#include "graph/dist_matrix.hpp"
#include "graph/fingerprint.hpp"
#include "graph/local_graph.hpp"
#include "seq/certificate.hpp"
#include "seq/connected_components.hpp"
#include "seq/karger_stein.hpp"
#include "seq/stoer_wagner.hpp"
#include "store/store.hpp"

namespace camc::check {

using graph::DistributedEdgeArray;
using graph::DistributedMatrix;

namespace {

Verdict pass() { return Verdict{Outcome::kPass, {}}; }

Verdict fail(std::string detail) {
  return Verdict{Outcome::kFail, std::move(detail)};
}

/// One persistent Machine per processor count: fuzzing runs thousands of
/// cases and must not pay thread-pool start-up per case.
bsp::Machine& machine(int p) {
  static std::map<int, std::unique_ptr<bsp::Machine>> machines;
  auto& slot = machines[p];
  if (!slot) slot = std::make_unique<bsp::Machine>(p);
  return *slot;
}

/// Scatters the instance and runs `body(world, dist)` on every rank.
template <class Body>
void run_distributed(int p, const TestCase& tc, Body&& body) {
  machine(p).run([&](bsp::Comm& world) {
    auto dist = DistributedEdgeArray::scatter(
        world, tc.n,
        world.rank() == 0 ? tc.edges : std::vector<WeightedEdge>{});
    body(world, dist);
  });
}

/// Reference component labeling (DFS over CSR; drops self-loops, which do
/// not affect connectivity).
std::vector<Vertex> reference_labels(const TestCase& tc) {
  return seq::dfs_components(graph::LocalGraph(tc.n, tc.edges));
}

Verdict judge_partition(const TestCase& tc,
                        const std::vector<Vertex>& candidate,
                        const char* who) {
  const std::vector<Vertex> truth = reference_labels(tc);
  if (candidate.size() != truth.size()) {
    std::ostringstream out;
    out << who << ": " << candidate.size() << " labels for " << tc.n
        << " vertices";
    return fail(out.str());
  }
  if (!seq::same_partition(candidate, truth)) {
    std::ostringstream out;
    out << who << ": partition differs from DFS ("
        << seq::component_count(candidate) << " vs "
        << seq::component_count(truth) << " components)";
    return fail(out.str());
  }
  return pass();
}

/// Deterministic cut-value truth. n < 2 has no cut; callers skip.
Weight true_min_cut(const TestCase& tc) {
  return seq::stoer_wagner_min_cut(tc.n, tc.edges).value;
}

/// Checks a (value, side) pair against the truth: the value must match and
/// a non-empty side must be a valid vertex subset cutting exactly `value`.
Verdict judge_cut(const TestCase& tc, Weight truth, Weight value,
                  const std::vector<Vertex>& side, bool side_valid,
                  const char* who) {
  if (value != truth) {
    std::ostringstream out;
    out << who << ": cut " << value << ", Stoer-Wagner says " << truth;
    return fail(out.str());
  }
  if (side_valid) {
    if (!graph::is_valid_cut_side(tc.n, side))
      return fail(std::string(who) + ": reported side is not a proper subset");
    const Weight crossing = graph::cut_value(tc.n, tc.edges, side);
    if (crossing != value) {
      std::ostringstream out;
      out << who << ": side cuts " << crossing << ", declared " << value;
      return fail(out.str());
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

Verdict seq_cc_oracle(const TestCase& tc) {
  const std::vector<Vertex> dfs = reference_labels(tc);
  const std::vector<Vertex> uf =
      seq::union_find_components(tc.n, tc.edges);
  if (!seq::same_partition(dfs, uf))
    return fail("dfs and union-find partitions differ");
  return pass();
}

Verdict cc_sparse_oracle(const TestCase& tc) {
  for (const int p : {1, 3}) {
    core::CcResult result;
    run_distributed(p, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
      auto r = core::connected_components(Context(world, tc.seed), dist);
      if (world.rank() == 0) result = r;
    });
    const Verdict v = judge_partition(tc, result.labels, "cc-sparse");
    if (v.outcome != Outcome::kPass)
      return fail(v.detail + " (p=" + std::to_string(p) + ")");
  }
  return pass();
}

Verdict cc_dense_oracle(const TestCase& tc) {
  core::CcResult result;
  run_distributed(2, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    auto matrix = DistributedMatrix::from_edges(world, tc.n, dist.local());
    auto r = core::connected_components_dense(Context(world, tc.seed),
                                              std::move(matrix));
    if (world.rank() == 0) result = r;
  });
  return judge_partition(tc, result.labels, "cc-dense");
}

Verdict cc_parallel_sample_oracle(const TestCase& tc) {
  core::CcResult result;
  run_distributed(2, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    core::CcOptions options;
    options.parallel_sample_components = true;
    auto r = core::connected_components(Context(world, tc.seed), dist, options);
    if (world.rank() == 0) result = r;
  });
  return judge_partition(tc, result.labels, "cc-parallel-sample");
}

/// Shared body of the portfolio-engine oracles: runs the dispatcher with
/// `engine` at each of `ps`, judges every labeling against DFS, and checks
/// the runs agree exactly across p (the engines' min-reduce / root
/// union-find structure makes labels partition-independent, not merely
/// partition-equivalent).
Verdict cc_engine_oracle(const TestCase& tc, core::CcEngine engine,
                         std::initializer_list<int> ps, const char* who) {
  std::vector<Vertex> first;
  bool have_first = false;
  for (const int p : ps) {
    core::CcResult result;
    run_distributed(p, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
      core::CcOptions options;
      options.engine = engine;
      auto r = core::connected_components(Context(world, tc.seed), dist,
                                          options);
      if (world.rank() == 0) result = r;
    });
    const Verdict v = judge_partition(tc, result.labels, who);
    if (v.outcome != Outcome::kPass)
      return fail(v.detail + " (p=" + std::to_string(p) + ")");
    if (!have_first) {
      first = std::move(result.labels);
      have_first = true;
    } else if (result.labels != first) {
      return fail(std::string(who) + ": labels differ across p (p=" +
                  std::to_string(p) + ")");
    }
  }
  return pass();
}

Verdict cc_fastsv_oracle(const TestCase& tc) {
  return cc_engine_oracle(tc, core::CcEngine::kFastSv, {1, 3}, "cc-fastsv");
}

Verdict cc_afforest_oracle(const TestCase& tc) {
  return cc_engine_oracle(tc, core::CcEngine::kAfforest, {1, 2},
                          "cc-afforest");
}

Verdict cc_ldd_oracle(const TestCase& tc) {
  return cc_engine_oracle(tc, core::CcEngine::kLdd, {1, 2}, "cc-ldd");
}

Verdict cc_auto_oracle(const TestCase& tc) {
  return cc_engine_oracle(tc, core::CcEngine::kAuto, {1, 2}, "cc-auto");
}

Verdict cc_sv_oracle(const TestCase& tc) {
  core::BspSvResult result;
  run_distributed(2, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    auto r = core::bsp_sv_components(world, dist);
    if (world.rank() == 0) result = r;
  });
  return judge_partition(tc, result.labels, "cc-sv");
}

Verdict cc_async_oracle(const TestCase& tc) {
  core::AsyncCcSharedState shared(tc.n);
  core::AsyncCcResult result;
  run_distributed(2, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    auto r = core::async_label_propagation(world, dist, shared);
    if (world.rank() == 0) result = r;
  });
  return judge_partition(tc, result.labels, "cc-async");
}

// ---------------------------------------------------------------------------
// Minimum cuts
// ---------------------------------------------------------------------------

Verdict mincut_sequential_oracle(const TestCase& tc) {
  if (tc.n < 2) {
    const auto result = core::sequential_min_cut(Context{}, tc.n, tc.edges);
    if (result.value != 0)
      return fail("sequential_min_cut on n < 2 returned " +
                  std::to_string(result.value));
    return pass();
  }
  core::MinCutOptions options;
  options.success_probability = 0.999;
  const auto result =
      core::sequential_min_cut(Context(tc.seed), tc.n, tc.edges, options);
  return judge_cut(tc, true_min_cut(tc), result.value, result.side,
                   !result.side.empty(), "mincut-sequential");
}

Verdict mincut_karger_stein_oracle(const TestCase& tc) {
  if (tc.n < 2) return pass();
  seq::KargerSteinOptions options;
  options.success_probability = 0.999;
  const auto result =
      seq::karger_stein_min_cut(tc.n, tc.edges, tc.seed, options);
  return judge_cut(tc, true_min_cut(tc), result.value, result.side,
                   !result.side.empty(), "mincut-karger-stein");
}

Verdict mincut_parallel_oracle(const TestCase& tc) {
  if (tc.n < 2) return pass();
  const Weight truth = true_min_cut(tc);
  core::MinCutOptions options;
  options.success_probability = 0.999;
  core::MinCutOutcome result;
  run_distributed(4, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    auto r = core::min_cut(Context(world, tc.seed), dist, options);
    if (world.rank() == 0) result = r;
  });
  return judge_cut(tc, truth, result.value, result.side, result.side_valid,
                   "mincut-parallel");
}

Verdict mincut_baseline_oracle(const TestCase& tc) {
  if (tc.n < 2) return pass();
  const Weight truth = true_min_cut(tc);
  core::MinCutOptions options;
  options.success_probability = 0.999;
  core::BaselineMinCutOutcome result;
  run_distributed(2, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    auto r = core::min_cut_previous_bsp(Context(world, tc.seed), dist, options);
    if (world.rank() == 0) result = r;
  });
  if (tc.edges.empty()) return pass();  // baseline reports 0 on m = 0
  if (result.value != truth) {
    std::ostringstream out;
    out << "mincut-baseline: cut " << result.value << ", Stoer-Wagner says "
        << truth;
    return fail(out.str());
  }
  return pass();
}

Verdict mincut_allcuts_oracle(const TestCase& tc) {
  if (tc.n < 2) return pass();
  const Weight truth = true_min_cut(tc);
  core::MinCutOptions options;
  options.success_probability = 0.999;
  const auto result =
      core::all_min_cuts(Context(tc.seed), tc.n, tc.edges, options);
  // Structural check only: the value must be right and every reported side
  // must really cut that value. Completeness (every min cut found) is a
  // w.h.p. guarantee, not a per-run one, so it is not judged here.
  if (result.value != truth) {
    std::ostringstream out;
    out << "mincut-allcuts: value " << result.value << ", Stoer-Wagner says "
        << truth;
    return fail(out.str());
  }
  if (result.cuts.empty() && truth != 0)
    return fail("mincut-allcuts: no cut reported for a finite value");
  for (const auto& side : result.cuts) {
    const Verdict v =
        judge_cut(tc, truth, truth, side, true, "mincut-allcuts");
    if (v.outcome != Outcome::kPass) return v;
  }
  return pass();
}

Verdict approx_mincut_oracle(const TestCase& tc) {
  if (tc.n < 2) return pass();
  const std::vector<Vertex> truth_labels = reference_labels(tc);
  const bool connected = seq::single_component(truth_labels);
  core::ApproxMinCutResult result;
  run_distributed(2, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    auto r = core::approx_min_cut(Context(world, tc.seed), dist);
    if (world.rank() == 0) result = r;
  });
  if (!connected) {
    if (result.estimate != 0)
      return fail("approx-mincut: nonzero estimate " +
                  std::to_string(result.estimate) +
                  " on a disconnected graph");
    return pass();
  }
  if (result.estimate == 0)
    return fail("approx-mincut: zero estimate on a connected graph");
  // Sanity band only (the guarantee is O(log n)-approximate w.h.p.): the
  // estimate is a power of two between 1 and far above the true cut. A
  // generous upper slack keeps correct randomized runs out of the report.
  const Weight truth = true_min_cut(tc);
  const double slack =
      64.0 * (2.0 + std::log2(static_cast<double>(std::max<Vertex>(tc.n, 2))));
  if (static_cast<double>(result.estimate) >
      slack * static_cast<double>(std::max<Weight>(truth, 1))) {
    std::ostringstream out;
    out << "approx-mincut: estimate " << result.estimate
        << " implausibly above true cut " << truth;
    return fail(out.str());
  }
  return pass();
}

// ---------------------------------------------------------------------------
// Persistent store
// ---------------------------------------------------------------------------

/// Unique temp file set for one oracle run, removed on scope exit.
class TempArtifacts {
 public:
  TempArtifacts() {
    static std::atomic<std::uint64_t> sequence{0};
    stem_ = (std::filesystem::temp_directory_path() /
             ("camc-oracle-" + std::to_string(::getpid()) + "-" +
              std::to_string(sequence.fetch_add(1))))
                .string();
  }
  ~TempArtifacts() {
    std::error_code ignored;
    for (const std::string& path : files_)
      std::filesystem::remove(path, ignored);
  }
  std::string path(const char* tag) {
    files_.push_back(stem_ + "." + tag + ".camc");
    return files_.back();
  }

 private:
  std::string stem_;
  std::vector<std::string> files_;
};

/// Round-trips every artifact kind through camc::store and checks the
/// loaded copies bit-identical AND in agreement with recomputation — a
/// loaded artifact must never claim something a fresh run would not.
Verdict store_roundtrip_oracle(const TestCase& tc) {
  TempArtifacts temp;

  // Graph artifact: save -> load is bit-identical, fingerprint verified.
  store::GraphArtifact graph_out;
  graph_out.name = "oracle";
  graph_out.n = tc.n;
  graph_out.edges = tc.edges;
  const std::string graph_path = temp.path("graph");
  const std::uint64_t fp = store::write_graph(graph_path, graph_out);
  const store::GraphArtifact graph_in = store::read_graph(graph_path);
  if (graph_in.name != graph_out.name || graph_in.n != tc.n ||
      graph_in.edges != tc.edges)
    return fail("store-roundtrip: loaded graph differs from the saved one");
  if (graph_in.fingerprint != fp ||
      fp != graph::graph_fingerprint(
                tc.n, std::span<const WeightedEdge>(tc.edges)))
    return fail("store-roundtrip: graph fingerprint drifted");

  // CC labeling: dense labels from union-find; the loaded labeling must
  // still be the same partition a fresh run computes.
  {
    const std::vector<Vertex> raw = seq::union_find_components(tc.n, tc.edges);
    store::CcLabelingArtifact cc_out;
    cc_out.graph_fingerprint = fp;
    cc_out.engine = core::CcEngine::kSampling;
    cc_out.seed = tc.seed;
    cc_out.iterations = 1;
    std::vector<Vertex> dense(tc.n, 0);
    std::map<Vertex, Vertex> densify;
    for (Vertex v = 0; v < tc.n; ++v)
      dense[v] = densify.emplace(raw[v], static_cast<Vertex>(densify.size()))
                     .first->second;
    cc_out.components = static_cast<std::uint32_t>(densify.size());
    cc_out.labels = std::move(dense);
    const std::string path = temp.path("cc");
    store::write_cc_labeling(path, cc_out);
    const store::CcLabelingArtifact cc_in = store::read_cc_labeling(path);
    if (cc_in.graph_fingerprint != fp || cc_in.engine != cc_out.engine ||
        cc_in.seed != cc_out.seed || cc_in.components != cc_out.components ||
        cc_in.iterations != cc_out.iterations || cc_in.labels != cc_out.labels)
      return fail("store-roundtrip: loaded cc labeling differs");
    if (tc.n > 0 && !seq::same_partition(cc_in.labels, reference_labels(tc)))
      return fail("store-roundtrip: loaded cc labeling disagrees with DFS");
  }

  // Sparse certificate: construction is deterministic, so the loaded edges
  // must equal a recomputed certificate exactly.
  if (tc.n > 0) {
    const Weight k = 3;
    const seq::CertificateResult cert =
        seq::sparse_certificate(tc.n, tc.edges, k);
    store::CertificateArtifact cert_out;
    cert_out.graph_fingerprint = fp;
    cert_out.k = k;
    cert_out.rounds = cert.rounds;
    cert_out.n = tc.n;
    cert_out.edges = cert.edges;
    const std::string path = temp.path("cert");
    store::write_certificate(path, cert_out);
    const store::CertificateArtifact cert_in = store::read_certificate(path);
    if (cert_in.graph_fingerprint != fp || cert_in.k != k ||
        cert_in.rounds != cert.rounds || cert_in.n != tc.n ||
        cert_in.edges != cert.edges)
      return fail("store-roundtrip: loaded certificate differs");
    const seq::CertificateResult again =
        seq::sparse_certificate(tc.n, tc.edges, k);
    if (cert_in.edges != again.edges || cert_in.rounds != again.rounds)
      return fail("store-roundtrip: certificate disagrees with recomputation");
  }

  // Contraction level: also deterministic given the input graph.
  {
    std::vector<WeightedEdge> contracted = tc.edges;
    const core::PreprocessResult pre =
        core::contract_heavy_edges(tc.n, contracted);
    store::ContractionArtifact con_out;
    con_out.graph_fingerprint = fp;
    con_out.new_n = pre.new_n;
    con_out.rounds = pre.rounds;
    con_out.degree_bound = pre.degree_bound;
    con_out.mapping = pre.mapping;
    const std::string path = temp.path("contraction");
    store::write_contraction(path, con_out);
    const store::ContractionArtifact con_in = store::read_contraction(path);
    if (con_in.graph_fingerprint != fp || con_in.new_n != pre.new_n ||
        con_in.rounds != pre.rounds ||
        con_in.degree_bound != pre.degree_bound ||
        con_in.mapping != pre.mapping)
      return fail("store-roundtrip: loaded contraction differs");
    std::vector<WeightedEdge> again_edges = tc.edges;
    const core::PreprocessResult again =
        core::contract_heavy_edges(tc.n, again_edges);
    if (con_in.mapping != again.mapping || con_in.new_n != again.new_n)
      return fail("store-roundtrip: contraction disagrees with recomputation");
  }
  return pass();
}

/// Wraps an oracle body: checked-arithmetic rejections are the contract
/// working (kRejected), anything else thrown is a bug surfaced loudly.
/// Streaming-mutation oracle: starting from the fuzz case's graph, replay
/// a seeded schedule of add/remove batches through dyn::DynCc and check
/// after EVERY batch that the incrementally maintained canonical labeling
/// is bit-identical to a from-scratch CC over the current edge multiset,
/// and that the incremental fingerprint matches a full rescan. A low
/// rebuild threshold in half the schedules forces the bounded-recompute
/// deletion path to actually run.
Verdict dyn_cc_oracle(const TestCase& tc) {
  if (tc.n == 0) return pass();
  for (const double threshold : {0.5, 0.05}) {
    dyn::CampaignOptions options;
    options.n = tc.n;
    options.initial = tc.edges;
    options.batches = 24;
    options.batch_size = 4;
    options.seed = tc.seed;
    options.remove_weight = 0.4;
    options.full_rebuild_threshold = threshold;
    const dyn::CampaignReport report = dyn::run_mutation_campaign(options);
    if (!report.ok())
      return fail("dyn-cc (threshold " + std::to_string(threshold) +
                  "): " + report.first_mismatch);
  }
  return pass();
}

// ---------------------------------------------------------------------------
// Biconnectivity
// ---------------------------------------------------------------------------

bcc::BccResult run_bcc(int p, const TestCase& tc) {
  bcc::BccResult out;
  run_distributed(p, tc, [&](bsp::Comm& world, DistributedEdgeArray& dist) {
    const Context ctx(world, tc.seed);
    bcc::BccResult mine = bcc::biconnected_components(ctx, dist);
    if (world.rank() == 0) out = std::move(mine);
  });
  return out;
}

/// Parallel BCC labels vs the sequential Hopcroft-Tarjan reference, at
/// p = 1, 2 and 4. Canonicalization (first occurrence in input edge
/// order) makes the comparison bit-for-bit, so this also pins cross-p
/// label identity — every p must match the same reference exactly.
Verdict bcc_labels_oracle(const TestCase& tc) {
  const bcc::BccResult want = bcc::biconnected_components_seq(tc.n, tc.edges);
  for (const int p : {1, 2, 4}) {
    const bcc::BccResult got = run_bcc(p, tc);
    std::ostringstream out;
    if (got.edge_labels != want.edge_labels) {
      out << "bcc-labels p=" << p << ": edge labels differ from reference";
      return fail(out.str());
    }
    if (got.bcc_count != want.bcc_count ||
        got.largest_bcc != want.largest_bcc) {
      out << "bcc-labels p=" << p << ": " << got.bcc_count << " BCCs (largest "
          << got.largest_bcc << "), reference says " << want.bcc_count
          << " (largest " << want.largest_bcc << ")";
      return fail(out.str());
    }
    if (got.articulation != want.articulation)
      return fail("bcc-labels p=" + std::to_string(p) +
                  ": articulation set differs from reference");
  }
  return pass();
}

/// Bridges cross-checked two independent ways: against the low-link
/// bridge finder (which never builds BCCs at all), and against the
/// labeling itself — a bridge is exactly a label carried by one edge.
Verdict bcc_bridges_oracle(const TestCase& tc) {
  const std::vector<std::uint64_t> lowlink = bcc::bridges_seq(tc.n, tc.edges);
  const bcc::BccResult got = run_bcc(2, tc);
  if (got.bridges != lowlink) {
    std::ostringstream out;
    out << "bcc-bridges: " << got.bridges.size() << " bridges, low-link finder says "
        << lowlink.size();
    return fail(out.str());
  }
  std::map<std::uint32_t, std::uint64_t> edges_per_label;
  for (const std::uint32_t label : got.edge_labels)
    if (label != bcc::kNoBcc) ++edges_per_label[label];
  std::vector<std::uint64_t> singletons;
  for (std::size_t i = 0; i < got.edge_labels.size(); ++i)
    if (got.edge_labels[i] != bcc::kNoBcc &&
        edges_per_label[got.edge_labels[i]] == 1)
      singletons.push_back(i);
  if (singletons != got.bridges)
    return fail("bcc-bridges: bridge list is not the size-1 BCCs");
  return pass();
}

/// Articulation points re-derived from first principles on small
/// instances: v is a cut vertex iff deleting it (and its edges) increases
/// the component count. No shared code with the block-label derivation.
Verdict bcc_articulation_oracle(const TestCase& tc) {
  if (tc.n > 256) return pass();  // O(n(n+m)) deletion sweep: small only
  const auto components_without = [&](Vertex skip) {
    std::vector<Vertex> uf(tc.n);
    for (Vertex v = 0; v < tc.n; ++v) uf[v] = v;
    const auto root = [&](Vertex v) {
      while (uf[v] != v) {
        uf[v] = uf[uf[v]];
        v = uf[v];
      }
      return v;
    };
    for (const WeightedEdge& e : tc.edges) {
      if (e.u == e.v || e.u == skip || e.v == skip) continue;
      const Vertex ru = root(e.u);
      const Vertex rv = root(e.v);
      if (ru != rv) uf[ru] = rv;
    }
    Vertex count = 0;
    for (Vertex v = 0; v < tc.n; ++v)
      if (v != skip && root(v) == v) ++count;
    return count;
  };
  const Vertex base = components_without(tc.n);  // tc.n skips nothing
  std::vector<Vertex> degree(tc.n, 0);
  for (const WeightedEdge& e : tc.edges) {
    if (e.u == e.v) continue;
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<Vertex> expected;
  for (Vertex v = 0; v < tc.n; ++v)
    if (degree[v] > 0 && components_without(v) > base) expected.push_back(v);
  const bcc::BccResult got = run_bcc(2, tc);
  if (got.articulation != expected) {
    std::ostringstream out;
    out << "bcc-articulation: " << got.articulation.size()
        << " cut vertices, deletion sweep finds " << expected.size();
    return fail(out.str());
  }
  return pass();
}

std::function<Verdict(const TestCase&)> guarded(
    Verdict (*body)(const TestCase&)) {
  return [body](const TestCase& tc) -> Verdict {
    try {
      return body(tc);
    } catch (const std::overflow_error& e) {
      return Verdict{Outcome::kRejected, e.what()};
    } catch (const std::exception& e) {
      return fail(std::string("unexpected exception: ") + e.what());
    }
  };
}

}  // namespace

const std::vector<Oracle>& all_oracles() {
  static const std::vector<Oracle> oracles = {
      {"seq-cc", "DFS vs union-find component partitions",
       guarded(seq_cc_oracle)},
      {"cc-sparse", "iterated-sampling CC (p=1,3) vs DFS",
       guarded(cc_sparse_oracle)},
      {"cc-dense", "dense-matrix CC (p=2) vs DFS", guarded(cc_dense_oracle)},
      {"cc-parallel-sample", "CC with parallel sample components vs DFS",
       guarded(cc_parallel_sample_oracle)},
      {"cc-fastsv", "FastSV portfolio engine (p=1,3) vs DFS + cross-p labels",
       guarded(cc_fastsv_oracle)},
      {"cc-afforest", "Afforest portfolio engine (p=1,2) vs DFS + cross-p labels",
       guarded(cc_afforest_oracle)},
      {"cc-ldd", "low-diameter-decomposition engine (p=1,2) vs DFS + cross-p labels",
       guarded(cc_ldd_oracle)},
      {"cc-auto", "auto-selected engine (p=1,2) vs DFS + cross-p labels",
       guarded(cc_auto_oracle)},
      {"cc-sv", "Shiloach-Vishkin baseline (p=2) vs DFS",
       guarded(cc_sv_oracle)},
      {"cc-async", "async label propagation (p=2) vs DFS",
       guarded(cc_async_oracle)},
      {"mincut-sequential", "sequential trials vs Stoer-Wagner + side check",
       guarded(mincut_sequential_oracle)},
      {"mincut-karger-stein", "Karger-Stein vs Stoer-Wagner + side check",
       guarded(mincut_karger_stein_oracle)},
      {"mincut-parallel", "distributed min cut (p=4) vs Stoer-Wagner",
       guarded(mincut_parallel_oracle)},
      {"mincut-baseline", "previous-BSP baseline (p=2) vs Stoer-Wagner",
       guarded(mincut_baseline_oracle)},
      {"mincut-allcuts", "all-min-cuts value + every side validated",
       guarded(mincut_allcuts_oracle)},
      {"approx-mincut", "estimate 0 iff disconnected + sanity band",
       guarded(approx_mincut_oracle)},
      {"store-roundtrip",
       "save/load every artifact kind bit-identical + recompute agreement",
       guarded(store_roundtrip_oracle)},
      {"dyn-cc",
       "incremental CC labels + fingerprint vs from-scratch after every "
       "mutation batch",
       guarded(dyn_cc_oracle)},
      {"bcc-labels",
       "parallel BCC labels (p=1,2,4) bit-identical to Hopcroft-Tarjan",
       guarded(bcc_labels_oracle)},
      {"bcc-bridges",
       "bridges vs independent low-link finder + size-1-BCC cross-check",
       guarded(bcc_bridges_oracle)},
      {"bcc-articulation",
       "articulation points vs vertex-deletion component counting",
       guarded(bcc_articulation_oracle)},
  };
  return oracles;
}

const Oracle* find_oracle(const std::string& name) {
  for (const Oracle& oracle : all_oracles())
    if (oracle.name == name) return &oracle;
  return nullptr;
}

}  // namespace camc::check
