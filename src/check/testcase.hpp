#pragma once

// Differential-testing instances and the on-disk fuzz corpus format.
//
// A TestCase is a graph plus the algorithm seed an oracle runs with. The
// corpus format is the repo's standard edge-list file preceded by one
// metadata comment line,
//
//   # camc-fuzz v1 oracle=<name> seed=<algoseed> expect=<outcome> origin=<...>
//
// so that a minimized failure replays with one command
// (`camc_fuzz --replay <file>`) and doubles as a regression input: the
// committed corpus under tests/corpus/ is re-run by the Check test suite
// and each file's outcome is asserted against its `expect` field.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge.hpp"

namespace camc::check {

using graph::Vertex;
using graph::Weight;
using graph::WeightedEdge;

/// One differential-testing instance. `origin` records how the case was
/// produced (generator family + mutation trail) for humans reading a
/// failure report; it does not affect execution.
struct TestCase {
  std::string origin;
  Vertex n = 0;
  std::vector<WeightedEdge> edges;
  /// Seed handed to the algorithm under test (not the generator seed).
  std::uint64_t seed = 1;
};

enum class Outcome {
  kPass,      ///< candidate agreed with its oracle
  kFail,      ///< disagreement — a bug in one of the two
  kRejected,  ///< input outside the contract (e.g. weight overflow)
};

struct Verdict {
  Outcome outcome = Outcome::kPass;
  /// Human-readable diagnosis, set on kFail / kRejected.
  std::string detail;
};

const char* outcome_name(Outcome outcome);

/// A corpus entry: the instance plus which oracle judges it and the
/// outcome the committed file is expected to reproduce.
struct CorpusCase {
  TestCase test_case;
  std::string oracle;
  std::string expect = "fail";  ///< "fail" | "pass" | "rejected"
};

/// Writes `entry` in the corpus format (edge list + metadata comment).
void write_corpus_file(const std::string& path, const CorpusCase& entry);

/// Parses a corpus file back. Throws std::runtime_error on files without
/// the camc-fuzz metadata line or with malformed graph data.
CorpusCase read_corpus_file(const std::string& path);

}  // namespace camc::check
