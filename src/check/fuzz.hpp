#pragma once

// Time-boxed differential fuzz loop with deterministic replay.
//
// fuzz() draws cases from mutate::random_case, judges each against every
// registered oracle, and on a failure shrinks the instance (treating
// rejected candidates as non-failing) and writes the minimized reproducer
// into the corpus directory with enough metadata for one-command replay:
//
//   camc_fuzz --replay tests/corpus/<file>
//
// The loop is fully deterministic given (seed, max_cases): wall-clock only
// truncates how far the case sequence gets, it never changes a case.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "check/testcase.hpp"

namespace camc::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Wall-clock box; <= 0 means no time limit (use max_cases instead).
  double seconds = 60.0;
  /// Stop after this many generated cases; 0 means unlimited.
  std::uint64_t max_cases = 0;
  /// Oracle names to run; empty means the full registry.
  std::vector<std::string> oracle_names;
  /// Where shrunk reproducers are written; empty disables writing.
  std::string corpus_dir;
  /// Stop after this many distinct failures (bounds shrink time).
  std::uint32_t max_failures = 8;
  std::size_t shrink_budget = 2000;
};

struct FuzzFailure {
  std::string oracle;
  TestCase shrunk;
  Verdict verdict;       ///< verdict on the shrunk instance
  std::string file;      ///< corpus path ("" when corpus_dir is empty)
};

struct FuzzReport {
  std::uint64_t cases_run = 0;
  std::uint64_t oracle_runs = 0;
  std::uint64_t rejected = 0;
  std::vector<FuzzFailure> failures;
  double elapsed_seconds = 0.0;
};

/// Runs the loop; progress and failures are logged to `log` when non-null.
FuzzReport fuzz(const FuzzOptions& options, std::ostream* log = nullptr);

/// Re-runs a corpus file against its recorded oracle.
Verdict replay(const std::string& corpus_path);

}  // namespace camc::check
