#pragma once

// Greedy test-case shrinking (delta debugging over graphs).
//
// Given a failing TestCase and a predicate "does this still fail", the
// shrinker runs reduction passes to a fixpoint:
//
//   1. edge-chunk removal — drop contiguous chunks of edges, chunk size
//      halving from m/2 down to 1 (classic ddmin);
//   2. vertex removal — delete a vertex and its incident edges, renumber;
//   3. vertex merge — redirect a vertex's edges onto vertex 0 (contraction
//      preserves many cut/connectivity bugs that deletion destroys);
//   4. weight simplification — all weights to 1 at once, else per-edge
//      halving toward 1;
//   5. id compaction — drop unused vertex ids.
//
// Every candidate is accepted only if the predicate still fails on it, so
// the result is a locally minimal failing instance. The predicate budget
// bounds total work on stubborn cases.

#include <cstddef>
#include <functional>

#include "check/testcase.hpp"

namespace camc::check {

struct ShrinkStats {
  std::size_t predicate_calls = 0;
  std::size_t rounds = 0;
};

/// Returns true when the candidate still exhibits the failure. Rejected
/// (out-of-contract) candidates must return false: shrinking must not walk
/// a genuine disagreement into a mere contract violation.
using StillFails = std::function<bool(const TestCase&)>;

/// Shrinks `failing` to a locally minimal instance for which `still_fails`
/// holds. `failing` itself is assumed to fail (it is returned unchanged if
/// nothing smaller fails).
TestCase shrink(TestCase failing, const StillFails& still_fails,
                ShrinkStats* stats = nullptr,
                std::size_t max_predicate_calls = 2000);

}  // namespace camc::check
