#include "check/testcase.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/io.hpp"

namespace camc::check {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kPass:
      return "pass";
    case Outcome::kFail:
      return "fail";
    case Outcome::kRejected:
      return "rejected";
  }
  return "?";
}

void write_corpus_file(const std::string& path, const CorpusCase& entry) {
  std::ostringstream meta;
  meta << "camc-fuzz v1 oracle=" << entry.oracle << " seed="
       << entry.test_case.seed << " expect=" << entry.expect;
  if (!entry.test_case.origin.empty())
    meta << " origin=" << entry.test_case.origin;
  graph::write_edge_list_file(path, entry.test_case.n, entry.test_case.edges,
                              meta.str());
}

namespace {

/// Extracts "key=value" from a whitespace-split metadata token.
bool split_token(const std::string& token, const std::string& key,
                 std::string& value) {
  if (token.rfind(key + "=", 0) != 0) return false;
  value = token.substr(key.size() + 1);
  return true;
}

}  // namespace

CorpusCase read_corpus_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);

  // Metadata lives in the leading comment lines; find the camc-fuzz one.
  CorpusCase entry;
  bool have_meta = false;
  std::string line;
  while (in.peek() == '#' && std::getline(in, line)) {
    std::istringstream fields(line);
    std::string token;
    fields >> token;  // '#'
    if (!(fields >> token) || token != "camc-fuzz") continue;
    fields >> token;  // version; only v1 exists
    if (token != "v1")
      throw std::runtime_error(path + ": unknown corpus version " + token);
    while (fields >> token) {
      std::string value;
      if (split_token(token, "oracle", value)) entry.oracle = value;
      else if (split_token(token, "seed", value))
        entry.test_case.seed = std::stoull(value);
      else if (split_token(token, "expect", value)) entry.expect = value;
      else if (split_token(token, "origin", value))
        entry.test_case.origin = value;
    }
    have_meta = true;
    break;
  }
  if (!have_meta || entry.oracle.empty())
    throw std::runtime_error(path + ": missing camc-fuzz metadata line");

  const graph::EdgeListFile file = graph::read_edge_list(in);
  entry.test_case.n = file.n;
  entry.test_case.edges = file.edges;
  return entry;
}

}  // namespace camc::check
