#pragma once

// Fault campaign: drive crash/stall/corruption schedules through every
// oracle and assert the system either recovers or fails in a structured,
// attributable way — never a hang, never a silent wrong answer.
//
// Each schedule is deterministic in (campaign seed, schedule index): a
// resilience::FaultPlan derived from the seed is installed process-wide
// (with a watchdog deadline, so even a stall or a corruption-induced
// collective divergence terminates), one oracle judges one generated
// case, and failed attempts are retried the way the recovery drivers
// would. Every attempt is classified:
//
// * clean pass          — no fault fired (schedule missed the run);
// * recovered           — pass after/with fired faults;
// * detected corruption — wrong answer or unmarked error in an attempt
//                         whose payloads were corrupted: the differential
//                         check caught the corruption, retry continues;
// * structured failure  — fault-marked errors ("bsp: injected...",
//                         "bsp: watchdog...", abort casualties) through
//                         the whole retry budget: a clean, attributed
//                         failure report, the graceful-degradation path;
// * INCIDENT            — an unmarked failure with no corruption applied:
//                         a genuine bug or silent wrong answer. This is
//                         the only outcome that fails the campaign.
//
// run_fault_campaign also measures watchdog detection latency with a
// dedicated stall probe (reported, and asserted by the ctest slice).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/edge.hpp"

namespace camc::check {

struct FaultCampaignOptions {
  std::uint64_t seed = 1;
  /// Fault schedules to sweep; oracles are visited round-robin.
  std::uint64_t schedules = 40;
  /// Oracle names to include; empty means the full registry.
  std::vector<std::string> oracle_names;
  /// Watchdog deadline for every run in the campaign. Keep comfortably
  /// above per-superstep compute (the campaign's cases are tiny) and low
  /// enough that stall schedules stay cheap.
  double watchdog_deadline_seconds = 1.5;
  /// Retry budget per schedule (mirrors resilience::RetryPolicy).
  std::uint32_t max_attempts = 3;
  /// Case-size caps: campaign cases stay small so a watchdog deadline in
  /// seconds is unambiguous (compute can never look like a stall).
  graph::Vertex max_n = 48;
  std::size_t max_m = 256;
};

struct FaultIncident {
  std::uint64_t schedule = 0;
  std::string oracle;
  std::string plan;    ///< FaultPlan::to_string()
  std::string detail;  ///< verdict detail of the unmarked failure
};

struct FaultCampaignReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t oracle_runs = 0;
  // Faults that actually fired, by kind (sum over all schedules' plans).
  std::uint64_t crashes_fired = 0;
  std::uint64_t stalls_fired = 0;
  std::uint64_t corruptions_fired = 0;
  std::uint64_t corruptions_applied = 0;
  // Terminal schedule outcomes.
  std::uint64_t clean_passes = 0;
  std::uint64_t recovered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t structured_failures = 0;
  // Attempt-level events.
  std::uint64_t detected_corruptions = 0;
  std::uint64_t watchdog_detections = 0;
  std::uint64_t retries = 0;
  /// Detection latency of the dedicated stall probe (seconds past the
  /// last heartbeat before the watchdog fired).
  double watchdog_latency_seconds = 0.0;
  double elapsed_seconds = 0.0;
  std::vector<FaultIncident> incidents;

  std::uint64_t faults_fired() const noexcept {
    return crashes_fired + stalls_fired + corruptions_fired;
  }
  /// The campaign's assertion: recovery or structured failure everywhere.
  bool ok() const noexcept { return incidents.empty(); }
};

/// Sweeps `options.schedules` fault schedules; logs per-schedule lines to
/// `log` when non-null. Deterministic in (seed, schedules, oracle set).
FaultCampaignReport run_fault_campaign(const FaultCampaignOptions& options,
                                       std::ostream* log = nullptr);

/// Stall probe: injects a stall into a fresh 4-rank run under `deadline`
/// and returns the watchdog's measured detection latency in seconds
/// (negative if the watchdog failed to fire — a bug).
double measure_watchdog_latency(double deadline_seconds);

}  // namespace camc::check
