#pragma once

// Oracle registry: every parallel algorithm in the repo paired with a
// sequential reference (or structural validator) that judges its answer on
// an arbitrary instance.
//
// Connected components are judged against depth-first traversal; minimum
// cuts against Stoer-Wagner (deterministic, no shared randomness with the
// candidates) plus side validation through graph::cut_value. The
// approximate cut and all-min-cuts oracles are structural: they check the
// properties the paper guarantees (estimate 0 iff disconnected; every
// reported side is a valid cut of the declared value) rather than exact
// equality, so a correct randomized run can never be reported as a bug.
//
// Any std::overflow_error thrown by either side maps to Outcome::kRejected:
// the checked Weight arithmetic rejecting an instance is the contract
// working, not a disagreement.

#include <functional>
#include <string>
#include <vector>

#include "check/testcase.hpp"

namespace camc::check {

struct Oracle {
  std::string name;
  /// One-line description for --list-oracles and DESIGN.md.
  std::string description;
  std::function<Verdict(const TestCase&)> run;
};

/// The full registry. Machines for the parallel oracles are constructed
/// once and cached, so a fuzz loop pays pool start-up only on first use.
const std::vector<Oracle>& all_oracles();

/// Registry lookup; nullptr when no oracle has that name.
const Oracle* find_oracle(const std::string& name);

}  // namespace camc::check
