#pragma once

// Adversarial instance generation for the fuzz loop.
//
// A case is a deterministic function of (fuzz seed, case index): a base
// graph drawn from the gen:: families plus the verification corner cases,
// a weight family (unit, small, or near the Weight contract boundary), and
// a randomized stack of adversarial mutations — duplicated parallel edges,
// self-loops, a near-disconnected bridge, permuted vertex ids, isolated
// vertices, dropped edges. The mutation trail is recorded in
// TestCase::origin so a failure report says where the instance came from.

#include <cstdint>

#include "check/testcase.hpp"
#include "rng/philox.hpp"

namespace camc::check {

/// Deterministic case construction; same (seed, index) -> same case.
TestCase random_case(std::uint64_t fuzz_seed, std::uint64_t index);

// Individual mutators, exposed for targeted tests. Each appends its name
// to tc.origin.

/// Duplicates up to `copies` randomly chosen edges (parallel edges).
void mutate_duplicate_edges(TestCase& tc, rng::Philox& gen,
                            std::uint32_t copies = 4);

/// Adds up to `count` random self-loops (weightless no-ops by contract).
void mutate_add_self_loops(TestCase& tc, rng::Philox& gen,
                           std::uint32_t count = 3);

/// Splits the vertex range in two and reconnects the halves with a single
/// unit-weight bridge — the minimum cut becomes 1 (or 0 if a half is
/// empty), stressing cut algorithms near disconnection.
void mutate_near_disconnect(TestCase& tc, rng::Philox& gen);

/// Applies a random permutation to the vertex ids.
void mutate_permute_ids(TestCase& tc, rng::Philox& gen);

/// Appends `count` fresh isolated vertices (graph becomes disconnected).
void mutate_add_isolated(TestCase& tc, rng::Philox& gen,
                         std::uint32_t count = 2);

/// Drops a random fraction of the edges.
void mutate_drop_edges(TestCase& tc, rng::Philox& gen);

/// Reassigns weights from one of the weight families; family 2 pushes
/// weights toward the checked-arithmetic boundary (sums stay below
/// 2^62, so rejecting such a case is itself a bug).
void mutate_weights(TestCase& tc, rng::Philox& gen, std::uint32_t family);

}  // namespace camc::check
