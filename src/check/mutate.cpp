#include "check/mutate.hpp"

#include <algorithm>
#include <numeric>

#include "gen/generators.hpp"
#include "gen/verification.hpp"

namespace camc::check {

namespace {

/// Distinct Philox stream namespace for the fuzzer (generators use low
/// streams, algorithms use 0x3C0000/0xCC00/0xD0000000-style namespaces).
constexpr std::uint64_t kFuzzStream = 0xF0220000ull;

void note(TestCase& tc, const char* what) {
  tc.origin += '+';
  tc.origin += what;
}

}  // namespace

void mutate_duplicate_edges(TestCase& tc, rng::Philox& gen,
                            std::uint32_t copies) {
  if (tc.edges.empty()) return;
  for (std::uint32_t k = 0; k < copies; ++k)
    tc.edges.push_back(tc.edges[gen.bounded(tc.edges.size())]);
  note(tc, "dup");
}

void mutate_add_self_loops(TestCase& tc, rng::Philox& gen,
                           std::uint32_t count) {
  if (tc.n == 0) return;
  for (std::uint32_t k = 0; k < count; ++k) {
    const auto v = static_cast<Vertex>(gen.bounded(tc.n));
    tc.edges.push_back({v, v, 1 + gen.bounded(4)});
  }
  note(tc, "loops");
}

void mutate_near_disconnect(TestCase& tc, rng::Philox& gen) {
  if (tc.n < 3) return;
  const auto split = static_cast<Vertex>(1 + gen.bounded(tc.n - 1));
  std::vector<WeightedEdge> kept;
  kept.reserve(tc.edges.size());
  for (const WeightedEdge& e : tc.edges)
    if ((e.u < split) == (e.v < split)) kept.push_back(e);
  // One unit bridge between the halves: cut algorithms must find exactly 1.
  kept.push_back({static_cast<Vertex>(gen.bounded(split)),
                  static_cast<Vertex>(split + gen.bounded(tc.n - split)), 1});
  tc.edges = std::move(kept);
  note(tc, "bridge");
}

void mutate_permute_ids(TestCase& tc, rng::Philox& gen) {
  if (tc.n < 2) return;
  std::vector<Vertex> perm(tc.n);
  std::iota(perm.begin(), perm.end(), Vertex{0});
  for (Vertex i = tc.n; i-- > 1;)
    std::swap(perm[i], perm[gen.bounded(i + 1)]);
  for (WeightedEdge& e : tc.edges) {
    e.u = perm[e.u];
    e.v = perm[e.v];
  }
  note(tc, "perm");
}

void mutate_add_isolated(TestCase& tc, rng::Philox& gen,
                         std::uint32_t count) {
  tc.n += static_cast<Vertex>(1 + gen.bounded(count));
  note(tc, "isolated");
}

void mutate_drop_edges(TestCase& tc, rng::Philox& gen) {
  if (tc.edges.empty()) return;
  const double keep = 0.3 + 0.6 * gen.uniform_real();
  std::vector<WeightedEdge> kept;
  kept.reserve(tc.edges.size());
  for (const WeightedEdge& e : tc.edges)
    if (gen.bernoulli(keep)) kept.push_back(e);
  tc.edges = std::move(kept);
  note(tc, "drop");
}

void mutate_weights(TestCase& tc, rng::Philox& gen, std::uint32_t family) {
  switch (family) {
    case 0:  // unit
      for (WeightedEdge& e : tc.edges) e.weight = 1;
      break;
    case 1:  // small random
      for (WeightedEdge& e : tc.edges) e.weight = 1 + gen.bounded(8);
      note(tc, "w-small");
      break;
    default: {
      // Near the contract boundary: per-edge weights around 2^53 sized so
      // that even summed over every edge (m <= ~2^8 here) twice the total
      // stays below 2^62 — the checked arithmetic must ACCEPT these. A case
      // from this family being rejected is a real finding.
      const Weight base = Weight{1} << 53;
      for (WeightedEdge& e : tc.edges)
        e.weight = base + gen.bounded(Weight{1} << 20);
      note(tc, "w-extreme");
      break;
    }
  }
}

TestCase random_case(std::uint64_t fuzz_seed, std::uint64_t index) {
  rng::Philox gen(fuzz_seed, kFuzzStream + index);

  TestCase tc;
  tc.seed = fuzz_seed * 1000003 + index + 1;

  // Base family: the gen:: generators plus deterministic corner graphs.
  const std::uint64_t family = gen.bounded(10);
  const auto small_n = static_cast<Vertex>(4 + gen.bounded(28));
  switch (family) {
    case 0: {
      const auto n = static_cast<Vertex>(6 + gen.bounded(42));
      const std::uint64_t m = n + gen.bounded(3 * n);
      tc.origin = "er";
      tc.n = n;
      tc.edges = gen::erdos_renyi(n, m, gen());
      break;
    }
    case 1: {
      const auto n = static_cast<Vertex>(8 + 2 * gen.bounded(20));
      tc.origin = "ws";
      tc.n = n;
      tc.edges = gen::watts_strogatz(n, 4, 0.3, gen());
      break;
    }
    case 2: {
      const auto n = static_cast<Vertex>(8 + gen.bounded(32));
      tc.origin = "ba";
      tc.n = n;
      tc.edges = gen::barabasi_albert(n, 2, gen());
      break;
    }
    case 3: {
      const unsigned scale = 3 + static_cast<unsigned>(gen.bounded(3));
      tc.origin = "rmat";
      tc.n = Vertex{1} << scale;
      tc.edges = gen::rmat(scale, (Vertex{1} << scale) * 3, gen());
      break;
    }
    case 4: {
      const gen::KnownGraph g = gen::path_graph(small_n);
      tc.origin = "path";
      tc.n = g.n;
      tc.edges = g.edges;
      break;
    }
    case 5: {
      const gen::KnownGraph g = gen::cycle_graph(small_n);
      tc.origin = "cycle";
      tc.n = g.n;
      tc.edges = g.edges;
      break;
    }
    case 6: {
      const gen::KnownGraph g = gen::star_graph(small_n);
      tc.origin = "star";
      tc.n = g.n;
      tc.edges = g.edges;
      break;
    }
    case 7: {
      // dumbbell requires 0 < bridges < half - 1.
      const auto half = static_cast<Vertex>(4 + gen.bounded(5));
      const gen::KnownGraph g = gen::dumbbell_graph(
          half, static_cast<Vertex>(1 + gen.bounded(half - 2)));
      tc.origin = "dumbbell";
      tc.n = g.n;
      tc.edges = g.edges;
      break;
    }
    case 8: {
      const gen::KnownGraph g =
          gen::grid_graph(static_cast<Vertex>(2 + gen.bounded(4)),
                          static_cast<Vertex>(2 + gen.bounded(4)));
      tc.origin = "grid";
      tc.n = g.n;
      tc.edges = g.edges;
      break;
    }
    default: {  // edgeless / single vertex
      tc.origin = "edgeless";
      tc.n = static_cast<Vertex>(1 + gen.bounded(6));
      break;
    }
  }

  mutate_weights(tc, gen, static_cast<std::uint32_t>(gen.bounded(3)));

  // 0-3 structural mutations on top.
  const std::uint64_t mutations = gen.bounded(4);
  for (std::uint64_t k = 0; k < mutations; ++k) {
    switch (gen.bounded(6)) {
      case 0:
        mutate_duplicate_edges(tc, gen);
        break;
      case 1:
        mutate_add_self_loops(tc, gen);
        break;
      case 2:
        mutate_near_disconnect(tc, gen);
        break;
      case 3:
        mutate_permute_ids(tc, gen);
        break;
      case 4:
        mutate_add_isolated(tc, gen);
        break;
      default:
        mutate_drop_edges(tc, gen);
        break;
    }
  }
  return tc;
}

}  // namespace camc::check
