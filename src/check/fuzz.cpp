#include "check/fuzz.hpp"

#include <chrono>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "check/mutate.hpp"
#include "check/shrink.hpp"

namespace camc::check {

namespace {

std::vector<const Oracle*> select_oracles(const FuzzOptions& options) {
  std::vector<const Oracle*> selected;
  if (options.oracle_names.empty()) {
    for (const Oracle& oracle : all_oracles()) selected.push_back(&oracle);
    return selected;
  }
  for (const std::string& name : options.oracle_names) {
    const Oracle* oracle = find_oracle(name);
    if (oracle == nullptr)
      throw std::invalid_argument("unknown oracle: " + name);
    selected.push_back(oracle);
  }
  return selected;
}

std::string corpus_file_name(const FuzzOptions& options, const Oracle& oracle,
                             std::uint64_t index) {
  std::ostringstream name;
  name << oracle.name << "-seed" << options.seed << "-case" << index
       << ".txt";
  return name.str();
}

}  // namespace

FuzzReport fuzz(const FuzzOptions& options, std::ostream* log) {
  const std::vector<const Oracle*> oracles = select_oracles(options);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  FuzzReport report;
  for (std::uint64_t index = 0;; ++index) {
    if (options.max_cases != 0 && index >= options.max_cases) break;
    if (options.seconds > 0 && elapsed() >= options.seconds) break;
    if (report.failures.size() >= options.max_failures) break;

    const TestCase tc = random_case(options.seed, index);
    ++report.cases_run;

    for (const Oracle* oracle : oracles) {
      ++report.oracle_runs;
      const Verdict verdict = oracle->run(tc);
      if (verdict.outcome == Outcome::kRejected) {
        ++report.rejected;
        continue;
      }
      if (verdict.outcome == Outcome::kPass) continue;

      if (log != nullptr)
        *log << "FAIL case " << index << " [" << tc.origin << "] oracle "
             << oracle->name << ": " << verdict.detail << "\n";

      // Shrink: a candidate fails only if the SAME oracle still disagrees;
      // rejected candidates count as non-failing so the minimized instance
      // stays inside the contract.
      ShrinkStats stats;
      const TestCase shrunk = shrink(
          tc,
          [&](const TestCase& candidate) {
            return oracle->run(candidate).outcome == Outcome::kFail;
          },
          &stats, options.shrink_budget);

      FuzzFailure failure;
      failure.oracle = oracle->name;
      failure.shrunk = shrunk;
      failure.verdict = oracle->run(shrunk);
      if (!options.corpus_dir.empty()) {
        failure.file = options.corpus_dir + "/" +
                       corpus_file_name(options, *oracle, index);
        CorpusCase entry;
        entry.test_case = shrunk;
        entry.oracle = oracle->name;
        entry.expect = "fail";
        write_corpus_file(failure.file, entry);
      }
      if (log != nullptr)
        *log << "  shrunk to n=" << shrunk.n << " m=" << shrunk.edges.size()
             << " in " << stats.predicate_calls << " predicate calls ("
             << stats.rounds << " rounds)"
             << (failure.file.empty() ? "" : " -> " + failure.file) << "\n"
             << "  " << failure.verdict.detail << "\n";
      report.failures.push_back(std::move(failure));
      if (report.failures.size() >= options.max_failures) break;
    }
  }
  report.elapsed_seconds = elapsed();
  return report;
}

Verdict replay(const std::string& corpus_path) {
  const CorpusCase entry = read_corpus_file(corpus_path);
  const Oracle* oracle = find_oracle(entry.oracle);
  if (oracle == nullptr)
    throw std::runtime_error(corpus_path + ": unknown oracle " + entry.oracle);
  return oracle->run(entry.test_case);
}

}  // namespace camc::check
