#include "check/faultcampaign.hpp"

#include <ostream>
#include <string>

#include "bsp/comm.hpp"
#include "bsp/fault.hpp"
#include "bsp/machine.hpp"
#include "check/mutate.hpp"
#include "check/oracles.hpp"
#include "resilience/fault_plan.hpp"
#include "rng/philox.hpp"

namespace camc::check {

namespace {

/// Fault-marked verdict details: every message the abort/injection
/// machinery can surface through an oracle's guarded() wrapper. Anything
/// else is an algorithm-level disagreement.
bool is_fault_marked(const std::string& detail) {
  return detail.find("bsp: injected") != std::string::npos ||
         detail.find("bsp: watchdog") != std::string::npos ||
         detail.find("bsp: run aborted") != std::string::npos;
}

bool mentions_watchdog(const std::string& detail) {
  return detail.find("bsp: watchdog") != std::string::npos;
}

/// Deterministic case cursor: walks the shared random_case sequence and
/// returns the next case under the campaign's size caps.
TestCase next_small_case(std::uint64_t seed, std::uint64_t& cursor,
                         const FaultCampaignOptions& options) {
  while (true) {
    TestCase tc = random_case(seed, cursor++);
    if (tc.n <= options.max_n && tc.edges.size() <= options.max_m) return tc;
  }
}

}  // namespace

double measure_watchdog_latency(double deadline_seconds) {
  resilience::FaultPlan plan(/*seed=*/7);
  plan.add_stall(/*rank=*/1, /*superstep=*/2);
  bsp::Machine probe(4);
  bsp::RunOptions run_options;
  run_options.injector = &plan;
  run_options.watchdog_deadline_seconds = deadline_seconds;
  try {
    probe.run(
        [](bsp::Comm& world) {
          for (int i = 0; i < 8; ++i) world.barrier();
        },
        run_options);
  } catch (const bsp::WatchdogTimeout& timeout) {
    return timeout.report().detection_seconds;
  }
  return -1.0;  // the stall was not detected: a watchdog bug
}

FaultCampaignReport run_fault_campaign(const FaultCampaignOptions& options,
                                       std::ostream* log) {
  const bsp::detail::Clock clock;
  FaultCampaignReport report;

  std::vector<const Oracle*> oracles;
  if (options.oracle_names.empty()) {
    for (const Oracle& oracle : all_oracles()) oracles.push_back(&oracle);
  } else {
    for (const std::string& name : options.oracle_names) {
      const Oracle* oracle = find_oracle(name);
      if (oracle == nullptr)
        throw std::invalid_argument("fault campaign: unknown oracle " + name);
      oracles.push_back(oracle);
    }
  }

  std::uint64_t cursor = 0;
  for (std::uint64_t schedule = 0; schedule < options.schedules; ++schedule) {
    const Oracle& oracle =
        *oracles[static_cast<std::size_t>(schedule % oracles.size())];
    const TestCase tc = next_small_case(options.seed, cursor, options);

    // The schedule: 1-3 faults at any collective, ranks up to the largest
    // oracle machine (p=4), supersteps within a short run's reach (the
    // campaign's small cases finish in a few dozen supersteps, and early
    // supersteps are the collective-dense ones).
    rng::Philox gen(options.seed, /*stream=*/0xCA3Bull + (schedule << 16));
    const int faults = 1 + static_cast<int>(gen.bounded(3));
    resilience::FaultPlan plan = resilience::FaultPlan::random(
        /*seed=*/options.seed ^ (0xFA110000ull + schedule), /*ranks=*/4,
        /*max_superstep=*/16, faults, /*allow_stalls=*/true);
    const resilience::ScopedFaultInjection scoped(
        &plan, options.watchdog_deadline_seconds);

    const char* outcome_label = "?";
    for (std::uint32_t attempt = 0;; ++attempt) {
      const std::uint64_t applied_before = plan.corruptions_applied();
      const Verdict verdict = oracle.run(tc);
      ++report.oracle_runs;
      const bool corrupted_this_attempt =
          plan.corruptions_applied() > applied_before;

      if (verdict.outcome == Outcome::kPass) {
        if (plan.faults_fired() > 0) {
          ++report.recovered;
          outcome_label = "recovered";
        } else {
          ++report.clean_passes;
          outcome_label = "clean-pass";
        }
        break;
      }
      if (verdict.outcome == Outcome::kRejected) {
        ++report.rejected;
        outcome_label = "rejected";
        break;
      }

      // kFail — attribute it.
      if (mentions_watchdog(verdict.detail)) ++report.watchdog_detections;
      const bool marked = is_fault_marked(verdict.detail);
      const bool last_attempt = attempt + 1 >= options.max_attempts;
      if (marked) {
        if (last_attempt) {
          // Fault-class failures through the whole budget: the graceful
          // degradation path — attributed, clean, no hang.
          ++report.structured_failures;
          outcome_label = "structured-failure";
          break;
        }
        ++report.retries;
        continue;
      }
      if (corrupted_this_attempt) {
        // The differential check caught an injected corruption.
        ++report.detected_corruptions;
        if (last_attempt) {
          ++report.structured_failures;
          outcome_label = "structured-failure";
          break;
        }
        ++report.retries;
        continue;
      }
      // Unmarked failure, nothing corrupted: a genuine bug (or a silent
      // wrong answer surfacing as a disagreement).
      report.incidents.push_back(FaultIncident{schedule, oracle.name,
                                               plan.to_string(),
                                               verdict.detail});
      outcome_label = "INCIDENT";
      break;
    }

    report.crashes_fired += plan.crashes_fired();
    report.stalls_fired += plan.stalls_fired();
    report.corruptions_fired += plan.corruptions_fired();
    report.corruptions_applied += plan.corruptions_applied();
    ++report.schedules_run;

    if (log != nullptr)
      *log << "schedule " << schedule << " oracle=" << oracle.name << " "
           << plan.to_string() << " -> " << outcome_label << "\n";
  }

  report.watchdog_latency_seconds =
      measure_watchdog_latency(options.watchdog_deadline_seconds);
  report.elapsed_seconds = clock.seconds();
  return report;
}

}  // namespace camc::check
