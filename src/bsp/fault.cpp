#include "bsp/fault.hpp"

#include <sstream>

namespace camc::bsp {

namespace {

std::string site_suffix(const FaultSite& site) {
  std::ostringstream out;
  out << " at rank " << site.rank << " superstep " << site.superstep << " in "
      << (site.collective ? site.collective : "?");
  return out.str();
}

std::atomic<FaultInjector*> g_injector{nullptr};
std::atomic<double> g_watchdog_deadline{0.0};

}  // namespace

InjectedCrash::InjectedCrash(const FaultSite& site)
    : FaultError("bsp: injected crash" + site_suffix(site)) {}

InjectedStall::InjectedStall(const FaultSite& site)
    : FaultError("bsp: injected stall" + site_suffix(site)) {}

WatchdogTimeout::WatchdogTimeout(std::shared_ptr<const RunReport> report)
    : FaultError("bsp: watchdog timeout — " +
                 (report ? report->to_string() : std::string("(no report)"))),
      report_(std::move(report)) {}

const char* rank_state_name(RankState state) noexcept {
  switch (state) {
    case RankState::kComputing:
      return "computing";
    case RankState::kInCollective:
      return "in-collective";
    case RankState::kStalled:
      return "stalled";
    case RankState::kDone:
      return "done";
    case RankState::kCrashed:
      return "crashed";
    case RankState::kAborted:
      return "aborted";
  }
  return "?";
}

std::string RunReport::to_string() const {
  std::ostringstream out;
  if (watchdog_fired) {
    out << "watchdog fired after " << detection_seconds
        << "s without progress; stragglers:";
    if (stragglers.empty()) out << " (none)";
    for (const int rank : stragglers) out << " " << rank;
    out << "; ";
  }
  out << "ranks:";
  for (const RankOutcome& rank : ranks) {
    out << " [" << rank.rank << " " << rank_state_name(rank.state)
        << " superstep " << rank.last_superstep;
    if (rank.last_collective) out << " " << rank.last_collective;
    out << "]";
  }
  return out.str();
}

void set_global_fault_injector(FaultInjector* injector) noexcept {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* global_fault_injector() noexcept {
  return g_injector.load(std::memory_order_acquire);
}

void set_global_watchdog_deadline(double seconds) noexcept {
  g_watchdog_deadline.store(seconds < 0.0 ? 0.0 : seconds,
                            std::memory_order_release);
}

double global_watchdog_deadline() noexcept {
  return g_watchdog_deadline.load(std::memory_order_acquire);
}

}  // namespace camc::bsp
