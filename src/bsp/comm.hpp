#pragma once

// Thread-backed BSP communicator.
//
// Stand-in for MPI on the paper's testbed (see DESIGN.md §1): each BSP
// "processor" is a thread, and collectives are implemented over shared
// memory with publish/copy rounds separated by barriers. The semantics
// deliberately mirror the MPI collectives the paper lists in §2.1
// (broadcast, reduce, gather, all-reduce, all-gather) plus the variable
// all-to-all used by sample sort.
//
// Contract: a collective must be called by every rank of the communicator
// with matching root/shape arguments, like MPI. Source buffers passed to a
// collective must stay alive until the call returns (the implementation
// copies between the internal barriers, so this is guaranteed by
// construction for the caller).
//
// Every collective costs exactly one superstep, matching the O(1)-superstep
// collective implementations the paper assumes (§2.1, [34]). The number of
// internal barrier waits per collective is an implementation detail and
// varies (data-parallel collectives use an extra publication round so that
// every rank can copy its own slice into the shared output concurrently);
// only the superstep *accounting* is part of the contract — see stats.hpp
// for the word-counting convention.
//
// Fast paths (vs. the straightforward root-copies-everything layout):
//  * gather / all_gather: the destination buffer is published once and
//    every rank memcpy()s its own slice into it in parallel.
//  * broadcast: each receiver copies the root's payload in a staggered
//    chunk order so concurrent receivers stream different parts of the
//    source instead of convoying on the same cache lines.
//  * alltoallv: contiguous per-rank send buffers with a counts header —
//    no nested vector allocations on the hot path. The
//    vector<vector<T>> overload remains as a convenience wrapper.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "bsp/barrier.hpp"
#include "bsp/fault.hpp"
#include "bsp/stats.hpp"

namespace camc::bsp {

namespace detail {

/// One publication slot per rank; padded against false sharing. pointer0/1
/// publish read-only inputs; out0 publishes a writable destination that
/// peer ranks fill in parallel (gather / all_gather fast paths).
struct alignas(64) Slot {
  const void* pointer0 = nullptr;
  const void* pointer1 = nullptr;
  void* out0 = nullptr;
  std::uint64_t count0 = 0;
  std::uint64_t count1 = 0;
};

inline std::uint64_t words_of_bytes(std::uint64_t bytes) noexcept {
  return (bytes + 7) / 8;
}

/// memcpy in ~64 KiB chunks, starting at a chunk offset that rotates with
/// `which` of `of_n` concurrent copiers. All copiers cover the whole
/// payload; staggering spreads them across the source so they stream
/// different regions instead of convoying on the same lines.
inline void staggered_copy(void* dst, const void* src, std::size_t bytes,
                           int which, int of_n) {
  constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
  if (bytes == 0) return;
  if (bytes <= kChunkBytes || of_n <= 1) {
    std::memcpy(dst, src, bytes);
    return;
  }
  const std::size_t chunks = (bytes + kChunkBytes - 1) / kChunkBytes;
  const std::size_t start =
      chunks * static_cast<std::size_t>(which) / static_cast<std::size_t>(of_n);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t index = (start + c) % chunks;
    const std::size_t offset = index * kChunkBytes;
    const std::size_t length = std::min(kChunkBytes, bytes - offset);
    std::memcpy(static_cast<char*>(dst) + offset,
                static_cast<const char*>(src) + offset, length);
  }
}

class Clock {
 public:
  Clock() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

/// Shared state of one communicator: a barrier, publication slots, and a
/// rendezvous map used by split(). Created once per communicator and shared
/// by all member threads.
class CommState {
 public:
  explicit CommState(int size)
      : size_(size), barrier_(size), slots_(static_cast<std::size_t>(size)) {
    if (size <= 0) throw std::invalid_argument("CommState: size must be > 0");
  }

  int size() const noexcept { return size_; }
  void arrive_and_wait() { barrier_.arrive_and_wait(); }
  bool aborted() const noexcept { return barrier_.aborted(); }
  detail::Slot& slot(int rank) { return slots_[static_cast<std::size_t>(rank)]; }

  /// Aborts this communicator's barrier and (from the run's root state)
  /// every communicator ever split off from it, releasing ranks parked in
  /// any of their barriers. Called by Machine when a rank throws.
  /// Idempotent; safe from any thread.
  void abort_tree() noexcept {
    barrier_.abort();
    CommState* root = root_ ? root_ : this;
    const std::lock_guard<std::mutex> lock(root->split_mutex_);
    for (const std::weak_ptr<CommState>& weak : root->descendants_)
      if (const std::shared_ptr<CommState> child = weak.lock())
        child->barrier_.abort();
  }

  // Split rendezvous -------------------------------------------------------
  void deposit_child(int color, std::shared_ptr<CommState> child) {
    CommState* root = root_ ? root_ : this;
    child->root_ = root;
    const std::lock_guard<std::mutex> lock(root->split_mutex_);
    root->descendants_.push_back(child);
    split_children_[color] = std::move(child);
  }
  std::shared_ptr<CommState> fetch_child(int color) {
    CommState* root = root_ ? root_ : this;
    const std::lock_guard<std::mutex> lock(root->split_mutex_);
    return split_children_.at(color);
  }
  void clear_children() {
    CommState* root = root_ ? root_ : this;
    const std::lock_guard<std::mutex> lock(root->split_mutex_);
    split_children_.clear();
  }

 private:
  int size_;
  detail::AbortableBarrier barrier_;
  std::vector<detail::Slot> slots_;
  /// The run's world state; children point at it so that one abort reaches
  /// every barrier a rank could be parked in. The world's own root_ is
  /// null (it cannot name itself: shared_ptr identity is external).
  CommState* root_ = nullptr;
  std::mutex split_mutex_;
  std::map<int, std::shared_ptr<CommState>> split_children_;
  std::vector<std::weak_ptr<CommState>> descendants_;  // root only
};

/// Per-thread handle onto a communicator: (shared state, my rank, my stats).
/// Cheap to copy. All collectives are methods here.
class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<CommState> state, int rank, RankStats* stats,
       detail::RankControl* control = nullptr)
      : state_(std::move(state)),
        rank_(rank),
        stats_(stats),
        control_(control) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return state_ ? state_->size() : 0; }
  bool is_root(int root = 0) const noexcept { return rank_ == root; }
  RankStats& stats() const noexcept { return *stats_; }

  /// Superstep boundary with no data exchange.
  void barrier() const {
    begin_collective("barrier");
    const detail::Clock clock;
    state_->arrive_and_wait();
    maybe_corrupt("barrier", nullptr, 0);  // no payload; clears any pending
    account(/*sent=*/0, /*received=*/0, clock);
  }

  // -- broadcast -----------------------------------------------------------

  /// Root's `data` is replicated into every rank's `data`.
  template <class T>
  void broadcast(std::vector<T>& data, int root = 0) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("broadcast");
    if (rank_ == root) publish(data.data(), data.size());
    const detail::Clock clock;
    state_->arrive_and_wait();
    std::uint64_t received_words = 0;
    if (rank_ != root) {
      const auto& s = state_->slot(root);
      data.resize(static_cast<std::size_t>(s.count0));
      const int receiver = rank_ < root ? rank_ : rank_ - 1;
      detail::staggered_copy(data.data(), s.pointer0,
                             data.size() * sizeof(T), receiver, size() - 1);
      received_words = detail::words_of_bytes(data.size() * sizeof(T));
    }
    state_->arrive_and_wait();
    maybe_corrupt("broadcast", rank_ == root ? nullptr : data.data(),
                  rank_ == root ? 0 : data.size() * sizeof(T));
    const std::uint64_t sent_words =
        (rank_ == root && size() > 1)
            ? detail::words_of_bytes(data.size() * sizeof(T))
            : 0;
    account(sent_words, received_words, clock);
  }

  /// Broadcast a single trivially copyable value.
  template <class T>
  T broadcast_value(T value, int root = 0) const {
    std::vector<T> wrapper;
    if (rank_ == root) wrapper.push_back(value);
    broadcast(wrapper, root);
    return wrapper.at(0);
  }

  // -- gather --------------------------------------------------------------

  /// Concatenates every rank's `local` (in rank order) at `root`.
  /// Returns the concatenation at the root and an empty vector elsewhere.
  /// Every rank copies its own slice into the root's output in parallel.
  template <class T>
  std::vector<T> gather(std::span<const T> local, int root = 0) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("gather");
    publish(local.data(), local.size());
    const detail::Clock clock;
    state_->arrive_and_wait();
    std::vector<T> out;
    std::uint64_t received_words = 0;
    if (rank_ == root) {
      std::size_t total = 0;
      for (int r = 0; r < size(); ++r) {
        const auto& s = state_->slot(r);
        total += s.count0;
        if (r != root)
          received_words += detail::words_of_bytes(s.count0 * sizeof(T));
      }
      out.resize(total);
      state_->slot(root).out0 = out.data();
    }
    state_->arrive_and_wait();
    if (local.size() > 0) {
      T* base = static_cast<T*>(state_->slot(root).out0);
      std::size_t offset = 0;
      for (int r = 0; r < rank_; ++r) offset += state_->slot(r).count0;
      std::memcpy(base + offset, local.data(), local.size() * sizeof(T));
    }
    state_->arrive_and_wait();
    maybe_corrupt("gather", out.data(), out.size() * sizeof(T));
    const std::uint64_t sent_words =
        rank_ == root ? 0 : detail::words_of_bytes(local.size() * sizeof(T));
    account(sent_words, received_words, clock);
    return out;
  }

  template <class T>
  std::vector<T> gather(const std::vector<T>& local, int root = 0) const {
    return gather(std::span<const T>(local), root);
  }

  /// gather + broadcast, in one superstep: every rank gets the rank-order
  /// concatenation of all locals. The concatenation is built once, in
  /// parallel, in rank 0's output; the other ranks then copy the finished
  /// buffer with a single staggered pass each.
  template <class T>
  std::vector<T> all_gather(std::span<const T> local) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("all_gather");
    publish(local.data(), local.size());
    const detail::Clock clock;
    state_->arrive_and_wait();
    std::size_t total = 0;
    std::size_t my_offset = 0;
    std::uint64_t received_words = 0;
    for (int r = 0; r < size(); ++r) {
      const auto& s = state_->slot(r);
      if (r < rank_) my_offset += s.count0;
      total += s.count0;
      if (r != rank_)
        received_words += detail::words_of_bytes(s.count0 * sizeof(T));
    }
    std::vector<T> out;
    if (rank_ == 0) {
      out.resize(total);
      state_->slot(0).out0 = out.data();
    }
    state_->arrive_and_wait();
    T* shared = static_cast<T*>(state_->slot(0).out0);
    if (local.size() > 0)
      std::memcpy(shared + my_offset, local.data(), local.size() * sizeof(T));
    state_->arrive_and_wait();
    // Reading the finished concatenation is shareable across receivers;
    // assign() copies it in one pass with no zero-initialization.
    if (rank_ != 0) out.assign(shared, shared + total);
    state_->arrive_and_wait();  // rank 0's buffer must outlive the readers
    maybe_corrupt("all_gather", out.data(), out.size() * sizeof(T));
    account(detail::words_of_bytes(local.size() * sizeof(T)) *
                static_cast<std::uint64_t>(size() > 1 ? 1 : 0),
            received_words, clock);
    return out;
  }

  template <class T>
  std::vector<T> all_gather(const std::vector<T>& local) const {
    return all_gather(std::span<const T>(local));
  }

  // -- reductions ----------------------------------------------------------

  /// Folds one value per rank with associative `op` at the root
  /// (rank order); returns the result at root, `identity` elsewhere.
  template <class T, class Op>
  T reduce(const T& value, Op op, T identity, int root = 0) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("reduce");
    publish(&value, 1);
    const detail::Clock clock;
    state_->arrive_and_wait();
    T result = identity;
    std::uint64_t received_words = 0;
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        const T& contribution =
            *static_cast<const T*>(state_->slot(r).pointer0);
        result = op(result, contribution);
        if (r != root) received_words += detail::words_of_bytes(sizeof(T));
      }
    }
    state_->arrive_and_wait();
    maybe_corrupt("reduce", &result, sizeof(T));
    account(rank_ == root ? 0 : detail::words_of_bytes(sizeof(T)),
            received_words, clock);
    return result;
  }

  /// Reduce whose result is available on every rank (one superstep).
  template <class T, class Op>
  T all_reduce(const T& value, Op op, T identity) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("all_reduce");
    publish(&value, 1);
    const detail::Clock clock;
    state_->arrive_and_wait();
    T result = identity;
    std::uint64_t received_words = 0;
    for (int r = 0; r < size(); ++r) {
      result = op(result, *static_cast<const T*>(state_->slot(r).pointer0));
      if (r != rank_) received_words += detail::words_of_bytes(sizeof(T));
    }
    state_->arrive_and_wait();
    maybe_corrupt("all_reduce", &result, sizeof(T));
    account(size() > 1 ? detail::words_of_bytes(sizeof(T)) : 0,
            received_words, clock);
    return result;
  }

  /// Exclusive prefix reduction: rank r receives
  /// op(...op(op(identity, v_0), v_1)..., v_{r-1}) — rank 0 gets identity.
  /// One superstep. The standard tool for computing per-rank offsets into a
  /// global array (e.g. assigning contiguous global indices to local
  /// slices).
  template <class T, class Op>
  T exclusive_scan(const T& value, Op op, T identity) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("exclusive_scan");
    publish(&value, 1);
    const detail::Clock clock;
    state_->arrive_and_wait();
    T result = identity;
    std::uint64_t received_words = 0;
    for (int r = 0; r < rank_; ++r) {
      result = op(result, *static_cast<const T*>(state_->slot(r).pointer0));
      received_words += detail::words_of_bytes(sizeof(T));
    }
    state_->arrive_and_wait();
    maybe_corrupt("exclusive_scan", &result, sizeof(T));
    account(size() > 1 ? detail::words_of_bytes(sizeof(T)) : 0,
            received_words, clock);
    return result;
  }

  /// Element-wise vector all-reduce; all ranks must pass equal-length input.
  template <class T, class Op>
  std::vector<T> all_reduce_vector(const std::vector<T>& values, Op op) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("all_reduce_vector");
    publish(values.data(), values.size());
    const detail::Clock clock;
    state_->arrive_and_wait();
    std::vector<T> result(values.size());
    std::uint64_t received_words = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
      result[i] = *(static_cast<const T*>(state_->slot(0).pointer0) + i);
    for (int r = 1; r < size(); ++r) {
      const T* src = static_cast<const T*>(state_->slot(r).pointer0);
      for (std::size_t i = 0; i < values.size(); ++i)
        result[i] = op(result[i], src[i]);
    }
    for (int r = 0; r < size(); ++r)
      if (r != rank_)
        received_words +=
            detail::words_of_bytes(values.size() * sizeof(T));
    state_->arrive_and_wait();
    maybe_corrupt("all_reduce_vector", result.data(),
                  result.size() * sizeof(T));
    account(size() > 1 ? detail::words_of_bytes(values.size() * sizeof(T)) : 0,
            received_words, clock);
    return result;
  }

  // -- scatter -------------------------------------------------------------

  /// Root splits `data` into consecutive chunks of sizes `counts[r]`
  /// (counts.size() == size(), meaningful at root only) and sends chunk r to
  /// rank r. Returns each rank's chunk. Receivers copy their chunks in
  /// parallel by construction.
  template <class T>
  std::vector<T> scatterv(const std::vector<T>& data,
                          const std::vector<std::uint64_t>& counts,
                          int root = 0) const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("scatterv");
    if (rank_ == root) {
      if (counts.size() != static_cast<std::size_t>(size())) {
        // Abort before throwing: peers are already entering the exchange
        // barrier, and a caller that catches this throw and carries on
        // must not strand them there.
        state_->abort_tree();
        throw std::invalid_argument("scatterv: counts.size() != comm size");
      }
      publish2(data.data(), data.size(), counts.data(), counts.size());
    }
    const detail::Clock clock;
    state_->arrive_and_wait();
    const auto& s = state_->slot(root);
    const T* base = static_cast<const T*>(s.pointer0);
    const auto* all_counts = static_cast<const std::uint64_t*>(s.pointer1);
    std::uint64_t offset = 0;
    for (int r = 0; r < rank_; ++r) offset += all_counts[r];
    const std::uint64_t mine = all_counts[rank_];
    std::vector<T> out(base + offset, base + offset + mine);
    state_->arrive_and_wait();
    maybe_corrupt("scatterv", out.data(), out.size() * sizeof(T));
    std::uint64_t sent = 0, received = 0;
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root)
          sent += detail::words_of_bytes(all_counts[r] * sizeof(T));
    } else {
      received = detail::words_of_bytes(mine * sizeof(T));
    }
    account(sent, received, clock);
    return out;
  }

  // -- all-to-all ----------------------------------------------------------

  /// Personalized all-to-all over contiguous send buffers: `send` holds the
  /// messages for ranks 0..p-1 back to back, `counts[r]` elements destined
  /// for rank r (sum(counts) == send.size()). Appends the concatenation (in
  /// source-rank order) of what every rank sent to this rank into `inbox`
  /// (which is cleared first; its capacity is reused across calls, and it
  /// must not alias `send`). If `received_counts` is non-null it is filled
  /// with the per-source-rank message lengths — the run boundaries sample
  /// sort's k-way merge needs.
  template <class T>
  void alltoallv_into(std::span<const T> send,
                      std::span<const std::uint64_t> counts,
                      std::vector<T>& inbox,
                      std::vector<std::uint64_t>* received_counts = nullptr)
      const {
    static_assert(std::is_trivially_copyable_v<T>);
    begin_collective("alltoallv");
    if (counts.size() != static_cast<std::size_t>(size())) {
      state_->abort_tree();  // see scatterv: do not strand peers
      throw std::invalid_argument("alltoallv: counts.size() != comm size");
    }
    publish2(send.data(), send.size(), counts.data(), counts.size());
    const detail::Clock clock;
    state_->arrive_and_wait();
    const int p = size();
    std::size_t total = 0;
    std::uint64_t received_words = 0;
    if (received_counts) {
      received_counts->clear();
      received_counts->reserve(static_cast<std::size_t>(p));
    }
    for (int r = 0; r < p; ++r) {
      const auto* their_counts =
          static_cast<const std::uint64_t*>(state_->slot(r).pointer1);
      const std::uint64_t length = their_counts[rank_];
      total += length;
      if (received_counts) received_counts->push_back(length);
      if (r != rank_)
        received_words += detail::words_of_bytes(length * sizeof(T));
    }
    inbox.clear();
    inbox.resize(total);
    std::size_t write = 0;
    for (int r = 0; r < p; ++r) {
      const auto& s = state_->slot(r);
      const auto* their_counts =
          static_cast<const std::uint64_t*>(s.pointer1);
      std::size_t read = 0;
      for (int q = 0; q < rank_; ++q) read += their_counts[q];
      const std::size_t length = their_counts[rank_];
      if (length > 0)
        std::memcpy(inbox.data() + write,
                    static_cast<const T*>(s.pointer0) + read,
                    length * sizeof(T));
      write += length;
    }
    state_->arrive_and_wait();
    maybe_corrupt("alltoallv", inbox.data(), inbox.size() * sizeof(T));
    std::uint64_t sent_words = 0;
    for (int r = 0; r < p; ++r)
      if (r != rank_)
        sent_words += detail::words_of_bytes(
            counts[static_cast<std::size_t>(r)] * sizeof(T));
    account(sent_words, received_words, clock);
  }

  /// alltoallv_into returning a fresh inbox.
  template <class T>
  std::vector<T> alltoallv(std::span<const T> send,
                           std::span<const std::uint64_t> counts) const {
    std::vector<T> inbox;
    alltoallv_into(send, counts, inbox);
    return inbox;
  }

  /// Personalized all-to-all, nested-vector convenience form: `outbox[r]`
  /// goes to rank r. Flattens into the contiguous fast path.
  template <class T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& outbox) const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (outbox.size() != static_cast<std::size_t>(size())) {
      state_->abort_tree();  // see scatterv: do not strand peers
      throw std::invalid_argument("alltoallv: outbox.size() != comm size");
    }
    std::vector<std::uint64_t> counts;
    counts.reserve(outbox.size());
    std::size_t total = 0;
    for (const std::vector<T>& box : outbox) {
      counts.push_back(box.size());
      total += box.size();
    }
    std::vector<T> flat;
    flat.reserve(total);
    for (const std::vector<T>& box : outbox)
      flat.insert(flat.end(), box.begin(), box.end());
    return alltoallv(std::span<const T>(flat),
                     std::span<const std::uint64_t>(counts));
  }

  // -- split ---------------------------------------------------------------

  /// Partitions the communicator: ranks passing the same `color` form a new
  /// communicator, ordered by their rank here. Collective. Colors must be
  /// non-negative.
  Comm split(int color) const;

 private:
  // -- fault hooks (fault.hpp) ---------------------------------------------
  // Every collective calls begin_collective(name) on entry and
  // maybe_corrupt(name, payload) on its received payload just before
  // returning. With no RankControl installed the entry hook is one store
  // plus a null test; counters and behaviour are untouched.

  void begin_collective(const char* name) const {
    stats_->last_collective = name;
    if (control_ == nullptr) return;
    detail::RankProgress& progress = *control_->progress;
    progress.superstep.store(stats_->supersteps, std::memory_order_relaxed);
    progress.collective.store(name, std::memory_order_relaxed);
    progress.state.store(RankState::kInCollective, std::memory_order_relaxed);
    progress.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (control_->injector == nullptr) return;
    const FaultSite site{control_->world_rank, stats_->supersteps, name};
    switch (control_->injector->at_collective(site)) {
      case FaultKind::kNone:
        return;
      case FaultKind::kCorrupt:
        control_->corrupt_pending = true;
        return;
      case FaultKind::kCrash:
        throw InjectedCrash(site);
      case FaultKind::kStall: {
        // Cooperative wedge: park (visibly, for the watchdog) until the
        // run is aborted around us, then unwind. The fallback bound means
        // a stall without any watchdog cannot hang a binary forever.
        progress.state.store(RankState::kStalled, std::memory_order_relaxed);
        const detail::Clock clock;
        while (!state_->aborted() &&
               clock.seconds() < detail::kStallFallbackSeconds)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw InjectedStall(site);
      }
    }
  }

  /// Consumes a pending corruption. Payloads below the data-plane floor
  /// (control scalars) still clear the pending flag but are left intact.
  void maybe_corrupt(const char* name, void* data, std::size_t bytes) const {
    if (control_ == nullptr || !control_->corrupt_pending) return;
    control_->corrupt_pending = false;
    if (data == nullptr || bytes < detail::kMinCorruptiblePayloadBytes) return;
    const FaultSite site{control_->world_rank, stats_->supersteps, name};
    control_->injector->corrupt_payload(site, data, bytes);
  }

  void publish(const void* pointer, std::uint64_t count) const {
    auto& s = state_->slot(rank_);
    s.pointer0 = pointer;
    s.count0 = count;
  }
  void publish2(const void* p0, std::uint64_t c0, const void* p1,
                std::uint64_t c1) const {
    auto& s = state_->slot(rank_);
    s.pointer0 = p0;
    s.count0 = c0;
    s.pointer1 = p1;
    s.count1 = c1;
  }

  void account(std::uint64_t sent_words, std::uint64_t received_words,
               const detail::Clock& clock) const {
    stats_->supersteps += 1;
    stats_->collective_calls += 1;
    stats_->words_sent += sent_words;
    stats_->words_received += received_words;
    stats_->comm_seconds += clock.seconds();
    progress_idle();
  }

  /// Marks the rank as back in user code for the watchdog.
  void progress_idle() const {
    if (control_ == nullptr) return;
    detail::RankProgress& progress = *control_->progress;
    progress.superstep.store(stats_->supersteps, std::memory_order_relaxed);
    progress.state.store(RankState::kComputing, std::memory_order_relaxed);
    progress.heartbeat.fetch_add(1, std::memory_order_relaxed);
  }

  std::shared_ptr<CommState> state_;
  int rank_ = -1;
  RankStats* stats_ = nullptr;
  detail::RankControl* control_ = nullptr;
};

}  // namespace camc::bsp
