#pragma once

// Abortable spin-then-block barrier for the BSP runtime.
//
// Two departures from std::barrier, both needed by src/bsp:
//
// * abort(): releases every current and future waiter, making them throw
//   RankAborted. A rank whose SPMD function throws would otherwise strand
//   its peers forever inside arrive_and_wait() (the deadlock previously
//   documented in machine.hpp); instead the Machine aborts the barrier
//   tree and the peers unwind cleanly.
// * a short adaptive spin before falling back to a futex-style blocking
//   wait (std::atomic::wait). Collectives on small payloads are dominated
//   by barrier latency, and peers almost always arrive within the spin
//   window when ranks run in lockstep.
//
// The barrier is a classic sense-reversing central barrier: arrivals
// increment `count_`; the last arriver resets the count and bumps the
// `phase_` generation, which waiters observe. All operations are seq_cst,
// which gives the happens-before edge collectives rely on: everything a
// rank wrote before arriving is visible to every rank after the same
// phase completes.

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace camc::bsp {

/// Thrown out of arrive_and_wait() on every rank parked in (or later
/// entering) an aborted barrier. Machine::run treats it as a secondary
/// casualty and rethrows the originating exception instead.
class RankAborted : public std::runtime_error {
 public:
  RankAborted() : std::runtime_error("bsp: run aborted by a peer rank") {}
};

namespace detail {

class AbortableBarrier {
 public:
  explicit AbortableBarrier(int expected) : expected_(expected) {
    if (expected <= 0)
      throw std::invalid_argument("AbortableBarrier: expected must be > 0");
  }

  AbortableBarrier(const AbortableBarrier&) = delete;
  AbortableBarrier& operator=(const AbortableBarrier&) = delete;

  /// Blocks until all `expected` members arrive. Throws RankAborted if the
  /// barrier is (or becomes) aborted; the phase the thrower arrived at is
  /// then indeterminate and the communicator must not be used again.
  void arrive_and_wait() {
    if (aborted_.load()) throw RankAborted();
    const std::uint64_t generation = phase_.load();
    if (count_.fetch_add(1) + 1 == expected_) {
      count_.store(0);
      phase_.fetch_add(1);
      phase_.notify_all();
      return;
    }
    for (int spin = 0; spin < kSpinLimit; ++spin) {
      if (phase_.load() != generation) {
        if (aborted_.load()) throw RankAborted();
        return;
      }
    }
    while (phase_.load() == generation) phase_.wait(generation);
    if (aborted_.load()) throw RankAborted();
  }

  /// Permanently aborts the barrier: wakes all waiters (they throw
  /// RankAborted) and makes every future arrive_and_wait() throw.
  /// Idempotent and callable from any thread, member or not.
  void abort() noexcept {
    aborted_.store(true);
    phase_.fetch_add(1);
    phase_.notify_all();
  }

  bool aborted() const noexcept { return aborted_.load(); }

 private:
  // Spin budget before blocking. Peers in lockstep arrive well within
  // this window; under oversubscription the blocking wait yields the core.
  static constexpr int kSpinLimit = 1024;

  const int expected_;
  std::atomic<int> count_{0};
  std::atomic<std::uint64_t> phase_{0};
  std::atomic<bool> aborted_{false};
};

}  // namespace detail
}  // namespace camc::bsp
