#include "bsp/comm.hpp"

namespace camc::bsp {

Comm Comm::split(int color) const {
  begin_collective("split");
  if (color < 0) {
    state_->abort_tree();  // see scatterv: do not strand peers
    throw std::invalid_argument("split: color must be >= 0");
  }

  // Superstep 1: publish colors.
  const std::int64_t my_color = color;
  publish(&my_color, 1);
  const detail::Clock clock;
  state_->arrive_and_wait();

  // Every rank deterministically computes the same grouping.
  int my_new_rank = 0;
  int group_size = 0;
  int group_leader = -1;  // smallest member rank, creates the state
  for (int r = 0; r < size(); ++r) {
    const auto their_color = static_cast<int>(
        *static_cast<const std::int64_t*>(state_->slot(r).pointer0));
    if (their_color != color) continue;
    if (group_leader < 0) group_leader = r;
    if (r < rank_) ++my_new_rank;
    ++group_size;
  }
  state_->arrive_and_wait();

  // Superstep 2: leaders deposit the child state, members fetch it.
  if (rank_ == group_leader)
    state_->deposit_child(color, std::make_shared<CommState>(group_size));
  state_->arrive_and_wait();
  std::shared_ptr<CommState> child = state_->fetch_child(color);
  state_->arrive_and_wait();
  if (rank_ == 0) state_->clear_children();

  // Metadata exchange: p words of colors, O(1) handles.
  maybe_corrupt("split", nullptr, 0);  // no data plane; clears any pending
  stats_->supersteps += 2;
  stats_->collective_calls += 1;
  stats_->words_sent += 1;
  stats_->words_received += static_cast<std::uint64_t>(size() > 0 ? size() - 1 : 0);
  stats_->comm_seconds += clock.seconds();
  progress_idle();

  // The child communicator carries the rank's fault-hook state along, so
  // injection and watchdog heartbeats keep working at any split depth.
  return Comm(std::move(child), my_new_rank, stats_, control_);
}

}  // namespace camc::bsp
