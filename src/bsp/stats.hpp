#pragma once

// BSP cost accounting.
//
// The paper states all of its results in the BSP model (§2.1): supersteps,
// per-superstep communication volume (largest number of unit-size messages
// sent or received by any processor), and computation time. The runtime
// counts these quantities exactly, plus wall-time spent inside collective
// operations — the equivalent of the paper's "time spent in MPI", which by
// their definition also includes synchronization (imbalance) costs.
//
// Word-accounting convention (every collective follows it; pinned by
// bsp_accounting_test.cpp):
//
// * `words_sent` charges a rank for each *distinct* 8-byte word it
//   publishes into a superstep, counted once no matter how many peers
//   read it — the one-copy convention of a replicating network, matching
//   the O(1)-superstep collectives the paper assumes (§2.1, [34]). So a
//   broadcast root is charged `size` once (not `(p-1) * size`), an
//   all-reduce contributor is charged one word, and a scatterv root is
//   charged the sum of the *remote* chunks (each chunk is distinct data,
//   so per-receiver chunks and distinct words coincide there).
// * `words_received` charges each receiving rank for every word it drains
//   from another rank's publication; replication is paid on the receive
//   side, once per reader.
// * Traffic a rank addresses to itself (self-chunks, own all-gather
//   slice) is a local copy and charges neither side.
// * Collectives on a single-rank communicator charge nothing.
//
// These counters are the paper-facing contract: runtime rewrites may
// change how bytes move (and therefore the time), but never the counts.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace camc::bsp {

/// Counters accumulated by one rank. Padded to a cache line so that ranks
/// updating their own counters do not false-share.
struct alignas(64) RankStats {
  std::uint64_t supersteps = 0;        ///< collective calls + barriers
  std::uint64_t words_sent = 0;        ///< 8-byte words written to other ranks
  std::uint64_t words_received = 0;    ///< 8-byte words read from other ranks
  std::uint64_t collective_calls = 0;  ///< number of collective invocations
  double comm_seconds = 0.0;           ///< wall time inside collectives

  // Abort forensics — where this rank last was, so a failed run can say
  // where it died (fault.hpp's RunReport reads these). Not part of the
  // counter contract above. `last_collective` always points at a static
  // string literal (the collective's name), so the pointer stays valid
  // after the run.
  const char* last_collective = nullptr;  ///< last collective entered
  std::uint64_t abort_superstep = 0;      ///< supersteps when the rank unwound
  bool aborted = false;                   ///< rank unwound with an exception

  void reset() { *this = RankStats{}; }
};

/// Machine-wide summary, reduced over ranks with BSP semantics:
/// supersteps are the maximum (they advance in lockstep; max is robust to
/// ranks joining late), volume is the maximum over ranks (the BSP
/// h-relation), and comm time is the maximum (the paper reports the
/// per-execution maximum over processors, §5 Methodology).
struct MachineStats {
  std::uint64_t supersteps = 0;
  std::uint64_t max_words_communicated = 0;  ///< max over ranks of sent+received
  std::uint64_t total_words_communicated = 0;
  std::uint64_t collective_calls = 0;
  double max_comm_seconds = 0.0;

  static MachineStats summarize(const std::vector<RankStats>& per_rank) {
    MachineStats out;
    for (const RankStats& r : per_rank) {
      out.supersteps = std::max(out.supersteps, r.supersteps);
      const std::uint64_t words = r.words_sent + r.words_received;
      out.max_words_communicated = std::max(out.max_words_communicated, words);
      out.total_words_communicated += words;
      out.collective_calls = std::max(out.collective_calls, r.collective_calls);
      out.max_comm_seconds = std::max(out.max_comm_seconds, r.comm_seconds);
    }
    return out;
  }
};

}  // namespace camc::bsp
