#pragma once

// Distributed sample sort over a BSP communicator.
//
// Sparse Bulk Edge Contraction (§4.1) needs the edges "globally sorted by
// their endpoints" so that parallel edges land on a single rank or adjacent
// ranks. Sample sort does this in O(1) supersteps: local sort, splitter
// selection from an oversampled all-gather, bucket exchange (alltoallv),
// and a final k-way merge.
//
// Fast paths (all counter-neutral — the exchanged sizes are identical to
// the straightforward implementation):
//  * the buckets of the locally sorted slice are contiguous ranges, so the
//    sorted slice itself is the alltoallv send buffer — no per-bucket
//    copies or nested vectors;
//  * the inbox is a concatenation of p sorted runs with known boundaries,
//    merged in O((m/p) log p) instead of re-sorted in O((m/p) log(m/p));
//  * scratch buffers live in a caller-owned SampleSortWorkspace so
//    repeated invocations (contraction rounds, bench loops) reuse their
//    capacity instead of reallocating.
//
// Postcondition: each rank holds a sorted slice, and the rank-order
// concatenation of the slices is the sorted multiset union of the inputs.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bsp/comm.hpp"
#include "rng/philox.hpp"

namespace camc::bsp {

/// Oversampling factor: each rank contributes this many splitter candidates
/// per output bucket. Higher values balance buckets better at the cost of a
/// larger (still O(p^2 * factor)) splitter exchange.
inline constexpr std::size_t kSampleSortOversampling = 16;

/// Reusable scratch for sample_sort. Hand the same instance to repeated
/// calls (same element type) to amortize allocations across rounds.
template <class T>
struct SampleSortWorkspace {
  std::vector<T> inbox;       ///< bucket-exchange landing buffer
  std::vector<T> scratch;     ///< merge ping-pong buffer
  std::vector<std::uint64_t> bucket_counts;
  std::vector<std::uint64_t> run_lengths;
};

namespace detail {

/// Merges `runs` consecutive sorted runs of `cur` (boundaries in
/// `offsets`, offsets.size() == runs + 1) into a sorted vector, using
/// `scratch` for ping-pong passes. O(total * ceil(log2(runs))).
template <class T, class Less>
std::vector<T> merge_sorted_runs(std::vector<T>& cur,
                                 std::vector<std::uint64_t> offsets,
                                 Less less, std::vector<T>& scratch) {
  std::size_t runs = offsets.size() - 1;
  const std::size_t total = static_cast<std::size_t>(offsets.back());
  std::vector<T> result;
  if (runs <= 1) {
    result.assign(cur.begin(), cur.begin() + static_cast<std::ptrdiff_t>(total));
    return result;
  }
  scratch.clear();
  scratch.resize(total);
  std::vector<T>* src = &cur;
  std::vector<T>* dst = &scratch;
  std::vector<std::uint64_t> next_offsets;
  while (runs > 2) {
    next_offsets.clear();
    next_offsets.push_back(0);
    std::size_t write = 0;
    for (std::size_t i = 0; i + 1 < runs; i += 2) {
      const auto b0 = static_cast<std::ptrdiff_t>(offsets[i]);
      const auto e0 = static_cast<std::ptrdiff_t>(offsets[i + 1]);
      const auto e1 = static_cast<std::ptrdiff_t>(offsets[i + 2]);
      std::merge(src->begin() + b0, src->begin() + e0, src->begin() + e0,
                 src->begin() + e1, dst->begin() + b0, less);
      write = static_cast<std::size_t>(e1);
      next_offsets.push_back(static_cast<std::uint64_t>(write));
    }
    if (runs % 2 == 1) {  // odd run out: carry over unmerged
      const auto b = static_cast<std::ptrdiff_t>(offsets[runs - 1]);
      const auto e = static_cast<std::ptrdiff_t>(offsets[runs]);
      std::copy(src->begin() + b, src->begin() + e, dst->begin() + b);
      next_offsets.push_back(offsets[runs]);
    }
    offsets = next_offsets;
    runs = offsets.size() - 1;
    std::swap(src, dst);
  }
  result.resize(total);
  const auto b0 = static_cast<std::ptrdiff_t>(offsets[0]);
  const auto e0 = static_cast<std::ptrdiff_t>(offsets[1]);
  const auto e1 = static_cast<std::ptrdiff_t>(offsets[2]);
  std::merge(src->begin() + b0, src->begin() + e0, src->begin() + e0,
             src->begin() + e1, result.begin(), less);
  return result;
}

}  // namespace detail

template <class T, class Less>
std::vector<T> sample_sort(const Comm& comm, std::vector<T> local, Less less,
                           rng::Philox& gen,
                           SampleSortWorkspace<T>* workspace = nullptr) {
  const int p = comm.size();
  std::sort(local.begin(), local.end(), less);
  if (p == 1) return local;

  SampleSortWorkspace<T> fallback;
  SampleSortWorkspace<T>& ws = workspace ? *workspace : fallback;

  // Draw candidate splitters uniformly from the local (sorted) slice. Ranks
  // with fewer elements than requested contribute everything they have.
  const std::size_t per_rank =
      kSampleSortOversampling * static_cast<std::size_t>(p);
  std::vector<T> candidates;
  if (local.size() <= per_rank) {
    candidates = local;
  } else {
    candidates.reserve(per_rank);
    for (std::size_t i = 0; i < per_rank; ++i)
      candidates.push_back(local[gen.bounded(local.size())]);
  }

  std::vector<T> pool = comm.all_gather(candidates);
  std::sort(pool.begin(), pool.end(), less);

  // p-1 splitters at regular intervals of the pooled candidates.
  std::vector<T> splitters;
  splitters.reserve(static_cast<std::size_t>(p) - 1);
  if (!pool.empty()) {
    for (int b = 1; b < p; ++b) {
      const std::size_t index =
          std::min(pool.size() - 1,
                   pool.size() * static_cast<std::size_t>(b) /
                       static_cast<std::size_t>(p));
      splitters.push_back(pool[index]);
    }
  }

  // The locally sorted slice is partitioned into p buckets by splitter
  // upper bounds; the buckets are contiguous, so `local` itself is the
  // contiguous alltoallv send buffer and only the counts are computed.
  std::vector<std::uint64_t>& counts = ws.bucket_counts;
  counts.assign(static_cast<std::size_t>(p), 0);
  if (splitters.empty()) {
    counts[0] = local.size();
  } else {
    std::size_t begin = 0;
    for (int b = 0; b < p - 1; ++b) {
      const auto end_it =
          std::upper_bound(local.begin() + static_cast<std::ptrdiff_t>(begin),
                           local.end(), splitters[static_cast<std::size_t>(b)],
                           less);
      const std::size_t end =
          static_cast<std::size_t>(end_it - local.begin());
      counts[static_cast<std::size_t>(b)] = end - begin;
      begin = end;
    }
    counts[static_cast<std::size_t>(p) - 1] = local.size() - begin;
  }

  comm.alltoallv_into(std::span<const T>(local),
                      std::span<const std::uint64_t>(counts), ws.inbox,
                      &ws.run_lengths);

  // The inbox is p sorted runs with known boundaries: k-way merge.
  std::vector<std::uint64_t> offsets(ws.run_lengths.size() + 1, 0);
  for (std::size_t r = 0; r < ws.run_lengths.size(); ++r)
    offsets[r + 1] = offsets[r] + ws.run_lengths[r];
  return detail::merge_sorted_runs(ws.inbox, std::move(offsets), less,
                                   ws.scratch);
}

}  // namespace camc::bsp
