#pragma once

// Distributed sample sort over a BSP communicator.
//
// Sparse Bulk Edge Contraction (§4.1) needs the edges "globally sorted by
// their endpoints" so that parallel edges land on a single rank or adjacent
// ranks. Sample sort does this in O(1) supersteps: local sort, splitter
// selection from an oversampled all-gather, bucket exchange (alltoallv),
// and a final local sort.
//
// Postcondition: each rank holds a sorted slice, and the rank-order
// concatenation of the slices is the sorted multiset union of the inputs.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bsp/comm.hpp"
#include "rng/philox.hpp"

namespace camc::bsp {

/// Oversampling factor: each rank contributes this many splitter candidates
/// per output bucket. Higher values balance buckets better at the cost of a
/// larger (still O(p^2 * factor)) splitter exchange.
inline constexpr std::size_t kSampleSortOversampling = 16;

template <class T, class Less>
std::vector<T> sample_sort(const Comm& comm, std::vector<T> local, Less less,
                           rng::Philox& gen) {
  const int p = comm.size();
  std::sort(local.begin(), local.end(), less);
  if (p == 1) return local;

  // Draw candidate splitters uniformly from the local (sorted) slice. Ranks
  // with fewer elements than requested contribute everything they have.
  const std::size_t per_rank =
      kSampleSortOversampling * static_cast<std::size_t>(p);
  std::vector<T> candidates;
  if (local.size() <= per_rank) {
    candidates = local;
  } else {
    candidates.reserve(per_rank);
    for (std::size_t i = 0; i < per_rank; ++i)
      candidates.push_back(local[gen.bounded(local.size())]);
  }

  std::vector<T> pool = comm.all_gather(candidates);
  std::sort(pool.begin(), pool.end(), less);

  // p-1 splitters at regular intervals of the pooled candidates.
  std::vector<T> splitters;
  splitters.reserve(static_cast<std::size_t>(p) - 1);
  if (!pool.empty()) {
    for (int b = 1; b < p; ++b) {
      const std::size_t index =
          std::min(pool.size() - 1,
                   pool.size() * static_cast<std::size_t>(b) /
                       static_cast<std::size_t>(p));
      splitters.push_back(pool[index]);
    }
  }

  // Partition the local slice into p buckets by splitter upper bounds.
  std::vector<std::vector<T>> outbox(static_cast<std::size_t>(p));
  if (splitters.empty()) {
    outbox[0] = std::move(local);
  } else {
    std::size_t begin = 0;
    for (int b = 0; b < p - 1; ++b) {
      const auto end_it =
          std::upper_bound(local.begin() + static_cast<std::ptrdiff_t>(begin),
                           local.end(), splitters[static_cast<std::size_t>(b)],
                           less);
      const std::size_t end =
          static_cast<std::size_t>(end_it - local.begin());
      outbox[static_cast<std::size_t>(b)]
          .assign(local.begin() + static_cast<std::ptrdiff_t>(begin),
                  local.begin() + static_cast<std::ptrdiff_t>(end));
      begin = end;
    }
    outbox[static_cast<std::size_t>(p) - 1]
        .assign(local.begin() + static_cast<std::ptrdiff_t>(begin),
                local.end());
  }

  std::vector<T> bucket = comm.alltoallv(outbox);
  // The inbox is a concatenation of p sorted runs; a sort keeps the code
  // simple and stays within the O((m/p) log m) local-work budget.
  std::sort(bucket.begin(), bucket.end(), less);
  return bucket;
}

}  // namespace camc::bsp
