#pragma once

// BSP machine: spawns p rank-threads and runs an SPMD function on a world
// communicator, collecting per-rank statistics and propagating exceptions.
//
// This is the session entry point:
//
//   camc::bsp::Machine machine(8);
//   auto outcome = machine.run([&](camc::bsp::Comm& world) {
//     ... SPMD code, world.rank() in [0, 8) ...
//   });
//   outcome.stats.max_comm_seconds;   // "MPI time"
//
// Threads may oversubscribe the physical cores; BSP supersteps make the
// execution semantics independent of the interleaving.

#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bsp/comm.hpp"
#include "bsp/stats.hpp"

namespace camc::bsp {

/// Result of one SPMD run: wall time plus the reduced BSP counters.
struct RunOutcome {
  double wall_seconds = 0.0;
  MachineStats stats;
  std::vector<RankStats> per_rank;
};

class Machine {
 public:
  explicit Machine(int processors) : processors_(processors) {
    if (processors <= 0)
      throw std::invalid_argument("Machine: processors must be > 0");
  }

  int processors() const noexcept { return processors_; }

  /// Runs `fn(world)` on every rank. Rethrows the first rank exception.
  RunOutcome run(const std::function<void(Comm&)>& fn) const {
    auto state = std::make_shared<CommState>(processors_);
    std::vector<RankStats> per_rank(static_cast<std::size_t>(processors_));
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(processors_));

    const detail::Clock clock;
    {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(processors_));
      for (int r = 0; r < processors_; ++r) {
        threads.emplace_back([&, r] {
          Comm world(state, r, &per_rank[static_cast<std::size_t>(r)]);
          try {
            fn(world);
          } catch (...) {
            errors[static_cast<std::size_t>(r)] = std::current_exception();
            // Unblock peers stuck in a barrier: there is no portable way to
            // cancel std::barrier waits, so a throwing rank is a programming
            // error in SPMD code; we terminate the run by rethrowing after
            // join only when all ranks exited. To avoid deadlock, SPMD code
            // must throw on all ranks or none (all our algorithms do).
          }
        });
      }
    }
    const double wall = clock.seconds();

    for (const std::exception_ptr& error : errors)
      if (error) std::rethrow_exception(error);

    RunOutcome outcome;
    outcome.wall_seconds = wall;
    outcome.stats = MachineStats::summarize(per_rank);
    outcome.per_rank = std::move(per_rank);
    return outcome;
  }

 private:
  int processors_;
};

}  // namespace camc::bsp
