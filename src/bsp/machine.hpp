#pragma once

// BSP machine: runs an SPMD function on p rank-threads over a world
// communicator, collecting per-rank statistics and propagating exceptions.
//
// This is the session entry point:
//
//   camc::bsp::Machine machine(8);
//   auto outcome = machine.run([&](camc::bsp::Comm& world) {
//     ... SPMD code, world.rank() in [0, 8) ...
//   });
//   outcome.stats.max_comm_seconds;   // "MPI time"
//
// The machine keeps a persistent worker pool: the p rank-threads are
// spawned once at construction and parked between run() calls, so the
// bench-harness shape — many run() calls on one Machine — pays a pair of
// pool barriers per run instead of p thread spawns and joins. Pass
// `persistent = false` to get the old spawn-per-run behaviour (used by
// the microbenchmarks to measure exactly this overhead).
//
// Threads may oversubscribe the physical cores; BSP supersteps make the
// execution semantics independent of the interleaving.
//
// Exception semantics: if a rank's SPMD function throws, the machine
// aborts the run's communicator tree, which releases every peer parked in
// a collective (they unwind with RankAborted — see barrier.hpp). run()
// rethrows the originating exception; the machine stays usable for
// subsequent run() calls.
//
// Resilience (fault.hpp): run() takes RunOptions carrying an optional
// FaultInjector and watchdog deadline (both fall back to the process-wide
// defaults). When either is active the ranks publish heartbeat atomics,
// and a watchdog thread aborts the run — with a RunReport naming the
// stragglers — if no rank makes progress for the deadline while some rank
// is still running. Injected stalls are cooperative (they park watching
// for the abort), so a watchdogged stall unwinds cleanly; a genuine
// non-cooperative infinite loop in user code cannot be force-unwound, but
// the watchdog still publishes its provisional report through
// last_run_report() before aborting, so even then the straggler is named
// somewhere a monitor thread can see it.

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bsp/comm.hpp"
#include "bsp/fault.hpp"
#include "bsp/stats.hpp"

namespace camc::bsp {

/// Per-run resilience knobs; the zero-argument run() keeps the fast path.
struct RunOptions {
  /// Fault oracle for this run; null falls back to the process-wide
  /// injector (which is itself null by default).
  FaultInjector* injector = nullptr;
  /// Watchdog deadline in seconds: < 0 falls back to the process-wide
  /// deadline, 0 disables the watchdog for this run.
  double watchdog_deadline_seconds = -1.0;
  /// How often the watchdog samples the rank heartbeats.
  double watchdog_poll_seconds = 0.001;
};

/// Result of one SPMD run: wall time plus the reduced BSP counters.
struct RunOutcome {
  double wall_seconds = 0.0;
  MachineStats stats;
  std::vector<RankStats> per_rank;
  RunReport report;
};

class Machine {
 public:
  explicit Machine(int processors, bool persistent = true)
      : processors_(processors), persistent_(persistent) {
    if (processors <= 0)
      throw std::invalid_argument("Machine: processors must be > 0");
    if (persistent_) {
      start_ = std::make_unique<std::barrier<>>(processors_ + 1);
      done_ = std::make_unique<std::barrier<>>(processors_ + 1);
      workers_.reserve(static_cast<std::size_t>(processors_));
      for (int r = 0; r < processors_; ++r)
        workers_.emplace_back([this, r] { worker_loop(r); });
    }
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  ~Machine() {
    if (persistent_) {
      stop_ = true;
      start_->arrive_and_wait();
      // jthread joins on destruction.
    }
  }

  int processors() const noexcept { return processors_; }

  /// Runs `fn(world)` on every rank. Rethrows the first rank exception;
  /// throws WatchdogTimeout (with the report) if the watchdog fired.
  RunOutcome run(const std::function<void(Comm&)>& fn,
                 const RunOptions& options = {}) {
    Job job;
    job.fn = &fn;
    job.state = std::make_shared<CommState>(processors_);
    job.per_rank.resize(static_cast<std::size_t>(processors_));
    job.errors.resize(static_cast<std::size_t>(processors_));

    FaultInjector* injector =
        options.injector ? options.injector : global_fault_injector();
    double deadline = options.watchdog_deadline_seconds;
    if (deadline < 0.0) deadline = global_watchdog_deadline();
    if (injector != nullptr || deadline > 0.0) {
      job.progress = std::make_unique<detail::RankProgress[]>(
          static_cast<std::size_t>(processors_));
      job.controls.resize(static_cast<std::size_t>(processors_));
      for (int r = 0; r < processors_; ++r) {
        auto& control = job.controls[static_cast<std::size_t>(r)];
        control.progress = &job.progress[static_cast<std::size_t>(r)];
        control.injector = injector;
        control.world_rank = r;
      }
    }

    WatchdogData watchdog;
    const detail::Clock clock;
    std::jthread monitor;
    if (deadline > 0.0)
      monitor = std::jthread([this, &job, &watchdog, deadline,
                              poll = options.watchdog_poll_seconds](
                                 std::stop_token token) {
        watchdog_loop(token, job, watchdog, deadline, poll);
      });

    if (persistent_) {
      job_ = &job;
      start_->arrive_and_wait();
      done_->arrive_and_wait();
      job_ = nullptr;
    } else {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(processors_));
      for (int r = 0; r < processors_; ++r)
        threads.emplace_back([&job, r] { run_rank(job, r); });
      // jthreads join at end of scope, before the watchdog is stopped.
    }
    if (monitor.joinable()) {
      monitor.request_stop();
      monitor.join();
    }
    const double wall = clock.seconds();

    RunOutcome outcome;
    outcome.wall_seconds = wall;
    outcome.stats = MachineStats::summarize(job.per_rank);
    outcome.report = build_report(job, watchdog, /*final_report=*/true);
    {
      const std::lock_guard<std::mutex> lock(report_mutex_);
      last_report_ = std::make_shared<const RunReport>(outcome.report);
    }
    if (watchdog.fired) {
      const std::lock_guard<std::mutex> lock(report_mutex_);
      throw WatchdogTimeout(last_report_);
    }
    rethrow_first_real_error(job.errors);

    outcome.per_rank = std::move(job.per_rank);
    return outcome;
  }

  /// Report of the most recent run (or the provisional report the watchdog
  /// published when it fired mid-run). Null before the first monitored run.
  std::shared_ptr<const RunReport> last_run_report() const {
    const std::lock_guard<std::mutex> lock(report_mutex_);
    return last_report_;
  }

 private:
  /// Everything one run() shares with the workers.
  struct Job {
    const std::function<void(Comm&)>* fn = nullptr;
    std::shared_ptr<CommState> state;
    std::vector<RankStats> per_rank;
    std::vector<std::exception_ptr> errors;
    // Monitored runs only (injector or watchdog active):
    std::unique_ptr<detail::RankProgress[]> progress;
    std::vector<detail::RankControl> controls;
  };

  /// What the watchdog thread hands back; read by run() after join.
  struct WatchdogData {
    bool fired = false;
    double detection_seconds = 0.0;
    std::vector<int> stragglers;
  };

  static void run_rank(Job& job, int r) {
    const auto index = static_cast<std::size_t>(r);
    detail::RankControl* control =
        job.controls.empty() ? nullptr : &job.controls[index];
    Comm world(job.state, r, &job.per_rank[index], control);
    try {
      (*job.fn)(world);
      if (control)
        control->progress->state.store(RankState::kDone,
                                       std::memory_order_relaxed);
    } catch (...) {
      job.errors[index] = std::current_exception();
      RankStats& stats = job.per_rank[index];
      stats.aborted = true;
      stats.abort_superstep = stats.supersteps;
      if (control)
        control->progress->state.store(classify_failure(job.errors[index]),
                                       std::memory_order_relaxed);
      // Release peers parked in any barrier of this run's communicator
      // tree; they unwind with RankAborted and land here too.
      job.state->abort_tree();
    }
  }

  static RankState classify_failure(
      const std::exception_ptr& error) noexcept {
    try {
      std::rethrow_exception(error);
    } catch (const RankAborted&) {
      return RankState::kAborted;
    } catch (...) {
      return RankState::kCrashed;
    }
  }

  static bool is_terminal(RankState state) noexcept {
    return state == RankState::kDone || state == RankState::kCrashed ||
           state == RankState::kAborted;
  }

  /// Polls the rank heartbeats; fires (publishes a provisional report,
  /// aborts the run) when the global heartbeat sum has not moved for
  /// `deadline` seconds while some rank is still non-terminal.
  void watchdog_loop(std::stop_token token, Job& job, WatchdogData& watchdog,
                     double deadline, double poll) {
    const std::chrono::duration<double> poll_duration(
        poll > 0.0 ? poll : 0.001);
    const detail::Clock clock;
    std::uint64_t last_sum = ~std::uint64_t{0};
    double last_change = clock.seconds();
    while (!token.stop_requested()) {
      std::this_thread::sleep_for(poll_duration);
      if (token.stop_requested()) return;
      std::uint64_t sum = 0;
      bool all_terminal = true;
      for (int r = 0; r < processors_; ++r) {
        const auto& progress = job.progress[static_cast<std::size_t>(r)];
        sum += progress.heartbeat.load(std::memory_order_relaxed);
        if (!is_terminal(progress.state.load(std::memory_order_relaxed)))
          all_terminal = false;
      }
      if (sum != last_sum) {
        last_sum = sum;
        last_change = clock.seconds();
        continue;
      }
      if (all_terminal) continue;
      const double stalled_for = clock.seconds() - last_change;
      if (stalled_for < deadline) continue;

      watchdog.fired = true;
      watchdog.detection_seconds = stalled_for;
      watchdog.stragglers = snapshot_stragglers(job);
      {
        // Publish a provisional report before aborting: if a genuinely
        // wedged rank keeps run() from ever returning, this is still
        // visible through last_run_report().
        const std::lock_guard<std::mutex> lock(report_mutex_);
        last_report_ = std::make_shared<const RunReport>(
            build_report(job, watchdog, /*final_report=*/false));
      }
      job.state->abort_tree();
      return;
    }
  }

  /// Ranks holding the run up: those off in user code or stalled; if every
  /// live rank is parked inside a collective, the ones that reached the
  /// fewest supersteps (the barrier they never arrived at is further back).
  std::vector<int> snapshot_stragglers(const Job& job) const {
    std::vector<int> stragglers;
    for (int r = 0; r < processors_; ++r) {
      const RankState state = job.progress[static_cast<std::size_t>(r)]
                                  .state.load(std::memory_order_relaxed);
      if (state == RankState::kComputing || state == RankState::kStalled)
        stragglers.push_back(r);
    }
    if (!stragglers.empty()) return stragglers;
    std::uint64_t min_superstep = ~std::uint64_t{0};
    for (int r = 0; r < processors_; ++r) {
      const auto& progress = job.progress[static_cast<std::size_t>(r)];
      if (is_terminal(progress.state.load(std::memory_order_relaxed)))
        continue;
      min_superstep = std::min(
          min_superstep, progress.superstep.load(std::memory_order_relaxed));
    }
    for (int r = 0; r < processors_; ++r) {
      const auto& progress = job.progress[static_cast<std::size_t>(r)];
      if (is_terminal(progress.state.load(std::memory_order_relaxed)))
        continue;
      if (progress.superstep.load(std::memory_order_relaxed) == min_superstep)
        stragglers.push_back(r);
    }
    return stragglers;
  }

  /// Assembles the per-rank outcomes. A final report (threads joined) may
  /// read RankStats and errors; a provisional one — built mid-run by the
  /// watchdog — reads only the progress atomics.
  RunReport build_report(const Job& job, const WatchdogData& watchdog,
                         bool final_report) const {
    RunReport report;
    report.watchdog_fired = watchdog.fired;
    report.detection_seconds = watchdog.detection_seconds;
    report.stragglers = watchdog.stragglers;
    report.ranks.reserve(static_cast<std::size_t>(processors_));
    for (int r = 0; r < processors_; ++r) {
      const auto index = static_cast<std::size_t>(r);
      RankOutcome outcome;
      outcome.rank = r;
      if (job.progress) {
        const auto& progress = job.progress[index];
        outcome.state = progress.state.load(std::memory_order_relaxed);
        outcome.last_superstep =
            progress.superstep.load(std::memory_order_relaxed);
        outcome.last_collective =
            progress.collective.load(std::memory_order_relaxed);
      } else {
        outcome.state = job.errors[index]
                            ? classify_failure(job.errors[index])
                            : RankState::kDone;
        outcome.last_superstep = job.per_rank[index].supersteps;
        outcome.last_collective = job.per_rank[index].last_collective;
      }
      if (final_report && job.progress) {
        // RankStats are safe to read now and strictly fresher.
        outcome.last_superstep = job.per_rank[index].supersteps;
        outcome.last_collective = job.per_rank[index].last_collective;
      }
      outcome.ok = outcome.state == RankState::kDone;
      report.ranks.push_back(outcome);
    }
    return report;
  }

  void worker_loop(int r) {
    while (true) {
      start_->arrive_and_wait();
      if (stop_) return;
      run_rank(*job_, r);
      done_->arrive_and_wait();
    }
  }

  /// Rethrows the first exception that is not a RankAborted casualty (in
  /// rank order); falls back to the first casualty if — against the abort
  /// protocol — nothing else was recorded.
  static void rethrow_first_real_error(
      const std::vector<std::exception_ptr>& errors) {
    std::exception_ptr fallback;
    for (const std::exception_ptr& error : errors) {
      if (!error) continue;
      if (!fallback) fallback = error;
      try {
        std::rethrow_exception(error);
      } catch (const RankAborted&) {
        continue;
      } catch (...) {
        std::rethrow_exception(error);
      }
    }
    if (fallback) std::rethrow_exception(fallback);
  }

  int processors_;
  bool persistent_;
  bool stop_ = false;
  Job* job_ = nullptr;
  std::unique_ptr<std::barrier<>> start_;
  std::unique_ptr<std::barrier<>> done_;
  std::vector<std::jthread> workers_;
  mutable std::mutex report_mutex_;
  std::shared_ptr<const RunReport> last_report_;
};

}  // namespace camc::bsp
