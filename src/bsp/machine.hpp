#pragma once

// BSP machine: runs an SPMD function on p rank-threads over a world
// communicator, collecting per-rank statistics and propagating exceptions.
//
// This is the session entry point:
//
//   camc::bsp::Machine machine(8);
//   auto outcome = machine.run([&](camc::bsp::Comm& world) {
//     ... SPMD code, world.rank() in [0, 8) ...
//   });
//   outcome.stats.max_comm_seconds;   // "MPI time"
//
// The machine keeps a persistent worker pool: the p rank-threads are
// spawned once at construction and parked between run() calls, so the
// bench-harness shape — many run() calls on one Machine — pays a pair of
// pool barriers per run instead of p thread spawns and joins. Pass
// `persistent = false` to get the old spawn-per-run behaviour (used by
// the microbenchmarks to measure exactly this overhead).
//
// Threads may oversubscribe the physical cores; BSP supersteps make the
// execution semantics independent of the interleaving.
//
// Exception semantics: if a rank's SPMD function throws, the machine
// aborts the run's communicator tree, which releases every peer parked in
// a collective (they unwind with RankAborted — see barrier.hpp). run()
// rethrows the originating exception; the machine stays usable for
// subsequent run() calls.

#include <barrier>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bsp/comm.hpp"
#include "bsp/stats.hpp"

namespace camc::bsp {

/// Result of one SPMD run: wall time plus the reduced BSP counters.
struct RunOutcome {
  double wall_seconds = 0.0;
  MachineStats stats;
  std::vector<RankStats> per_rank;
};

class Machine {
 public:
  explicit Machine(int processors, bool persistent = true)
      : processors_(processors), persistent_(persistent) {
    if (processors <= 0)
      throw std::invalid_argument("Machine: processors must be > 0");
    if (persistent_) {
      start_ = std::make_unique<std::barrier<>>(processors_ + 1);
      done_ = std::make_unique<std::barrier<>>(processors_ + 1);
      workers_.reserve(static_cast<std::size_t>(processors_));
      for (int r = 0; r < processors_; ++r)
        workers_.emplace_back([this, r] { worker_loop(r); });
    }
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  ~Machine() {
    if (persistent_) {
      stop_ = true;
      start_->arrive_and_wait();
      // jthread joins on destruction.
    }
  }

  int processors() const noexcept { return processors_; }

  /// Runs `fn(world)` on every rank. Rethrows the first rank exception.
  RunOutcome run(const std::function<void(Comm&)>& fn) {
    Job job;
    job.fn = &fn;
    job.state = std::make_shared<CommState>(processors_);
    job.per_rank.resize(static_cast<std::size_t>(processors_));
    job.errors.resize(static_cast<std::size_t>(processors_));

    const detail::Clock clock;
    if (persistent_) {
      job_ = &job;
      start_->arrive_and_wait();
      done_->arrive_and_wait();
      job_ = nullptr;
    } else {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(processors_));
      for (int r = 0; r < processors_; ++r)
        threads.emplace_back([&job, r] { run_rank(job, r); });
    }
    const double wall = clock.seconds();

    rethrow_first_real_error(job.errors);

    RunOutcome outcome;
    outcome.wall_seconds = wall;
    outcome.stats = MachineStats::summarize(job.per_rank);
    outcome.per_rank = std::move(job.per_rank);
    return outcome;
  }

 private:
  /// Everything one run() shares with the workers.
  struct Job {
    const std::function<void(Comm&)>* fn = nullptr;
    std::shared_ptr<CommState> state;
    std::vector<RankStats> per_rank;
    std::vector<std::exception_ptr> errors;
  };

  static void run_rank(Job& job, int r) {
    Comm world(job.state, r, &job.per_rank[static_cast<std::size_t>(r)]);
    try {
      (*job.fn)(world);
    } catch (...) {
      job.errors[static_cast<std::size_t>(r)] = std::current_exception();
      // Release peers parked in any barrier of this run's communicator
      // tree; they unwind with RankAborted and land here too.
      job.state->abort_tree();
    }
  }

  void worker_loop(int r) {
    while (true) {
      start_->arrive_and_wait();
      if (stop_) return;
      run_rank(*job_, r);
      done_->arrive_and_wait();
    }
  }

  /// Rethrows the first exception that is not a RankAborted casualty (in
  /// rank order); falls back to the first casualty if — against the abort
  /// protocol — nothing else was recorded.
  static void rethrow_first_real_error(
      const std::vector<std::exception_ptr>& errors) {
    std::exception_ptr fallback;
    for (const std::exception_ptr& error : errors) {
      if (!error) continue;
      if (!fallback) fallback = error;
      try {
        std::rethrow_exception(error);
      } catch (const RankAborted&) {
        continue;
      } catch (...) {
        std::rethrow_exception(error);
      }
    }
    if (fallback) std::rethrow_exception(fallback);
  }

  int processors_;
  bool persistent_;
  bool stop_ = false;
  Job* job_ = nullptr;
  std::unique_ptr<std::barrier<>> start_;
  std::unique_ptr<std::barrier<>> done_;
  std::vector<std::jthread> workers_;
};

}  // namespace camc::bsp
