#pragma once

// Fault-injection and failure-reporting contract for the BSP runtime.
//
// The paper's target machine (1536 Cray ranks, §5) lives with stragglers
// and rank failures; our thread-backed substitute previously turned any
// failure into a diagnostics-free abort and any wedged rank into a hang.
// This header defines the three pieces the runtime needs to do better:
//
// * FaultInjector — a deterministic oracle the collectives consult at
//   every entry, keyed by FaultSite = (world rank, cumulative superstep
//   index of this run, collective name). An injector can crash the rank
//   (throw InjectedCrash), stall it (park until the run is aborted — the
//   cooperative stand-in for a wedged rank), or mark the collective's
//   received payload for corruption. When no injector is installed the
//   hook is a single null-pointer test: zero overhead, bit-identical
//   counters (pinned by bsp_counter_invariance_test).
//
// * RunReport — per-rank forensics assembled by Machine::run after every
//   monitored run: last superstep reached, last collective entered, and a
//   terminal RankState per rank, plus the watchdog's straggler list.
//
// * WatchdogTimeout — thrown by Machine::run when its deadline monitor
//   (see machine.hpp) detects that no rank has made progress for the
//   configured deadline while some rank is still running. It carries the
//   RunReport so the caller can see exactly where the run died.
//
// Corruption is domain-safe by contract: corrupt_payload implementations
// must keep every aligned 4-byte lane <= its original value (see
// resilience::FaultPlan), so index-typed payloads (vertex labels, edge
// endpoints — 4-byte graph::Vertex fields) stay in range and corruption produces wrong answers or
// thrown errors — which the differential fuzzer detects — rather than
// out-of-bounds UB. Payloads smaller than kMinCorruptiblePayloadBytes
// (control scalars: reduced flags, broadcast_value headers) are exempt,
// so a corrupted rank cannot diverge from the collective sequence its
// peers execute.
//
// Global configuration: oracle code (src/check) runs algorithms through
// cached Machines it does not construct, so the injector and watchdog
// deadline can also be installed process-wide; per-run RunOptions (see
// machine.hpp) take precedence. Installation is not synchronized against
// concurrently running Machines — install while no run is in flight
// (resilience::ScopedFaultInjection is the RAII helper).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace camc::bsp {

/// What an injector asks a rank to do at a collective entry.
enum class FaultKind : std::uint8_t { kNone = 0, kCrash, kStall, kCorrupt };

/// Where a fault fires: the rank's world rank (stable across split()),
/// the run-cumulative superstep index at collective entry, and the
/// collective's name (a static string literal).
struct FaultSite {
  int rank = -1;
  std::uint64_t superstep = 0;
  const char* collective = nullptr;
};

/// Deterministic fault oracle consulted by every collective entry.
/// Implementations must be safe to call concurrently from all ranks.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Called once per collective entry per rank. Return kNone to do nothing.
  virtual FaultKind at_collective(const FaultSite& site) noexcept = 0;

  /// Called on the received payload of a collective whose entry returned
  /// kCorrupt (only for payloads >= kMinCorruptiblePayloadBytes). Must keep
  /// every aligned 4-byte lane <= its original value (domain safety: a
  /// 64-bit decrease can still raise a packed 32-bit index via a borrow).
  virtual void corrupt_payload(const FaultSite& site, void* data,
                               std::size_t bytes) noexcept = 0;
};

/// Base of every injected/runtime-detected fault. Messages all start with
/// "bsp: injected" or "bsp: watchdog" so downstream layers (retry driver,
/// fault campaign) can tell injected faults from genuine algorithm bugs.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by the faulted rank itself when an injector returns kCrash.
class InjectedCrash : public FaultError {
 public:
  explicit InjectedCrash(const FaultSite& site);
};

/// Thrown by a stalled rank once the run is aborted around it (or after a
/// long fallback if nothing aborts it — see detail::kStallFallbackSeconds).
class InjectedStall : public FaultError {
 public:
  explicit InjectedStall(const FaultSite& site);
};

/// Where a rank ended the run (or is, in a provisional mid-run report).
enum class RankState : std::uint8_t {
  kComputing = 0,  ///< in user code between collectives
  kInCollective,   ///< inside a collective (usually parked in its barrier)
  kStalled,        ///< parked by an injected stall
  kDone,           ///< SPMD function returned
  kCrashed,        ///< unwound with a real exception (injected or genuine)
  kAborted,        ///< unwound as a RankAborted casualty of a peer
};

const char* rank_state_name(RankState state) noexcept;

/// One rank's line in a RunReport.
struct RankOutcome {
  int rank = -1;
  RankState state = RankState::kComputing;
  std::uint64_t last_superstep = 0;        ///< supersteps completed/entered
  const char* last_collective = nullptr;   ///< static name; null if none yet
  bool ok = false;                         ///< state == kDone
};

/// Forensics for one Machine::run. Built after every run; when the
/// watchdog fires it names the stragglers (ranks that held the run up).
struct RunReport {
  bool watchdog_fired = false;
  double detection_seconds = 0.0;  ///< no-progress time before firing
  std::vector<RankOutcome> ranks;
  std::vector<int> stragglers;     ///< empty unless watchdog_fired

  std::string to_string() const;
};

/// Thrown by Machine::run when the watchdog fired. Carries the RunReport
/// (shared, so retry layers can keep it after the exception dies).
class WatchdogTimeout : public FaultError {
 public:
  explicit WatchdogTimeout(std::shared_ptr<const RunReport> report);
  const RunReport& report() const noexcept { return *report_; }
  const std::shared_ptr<const RunReport>& shared_report() const noexcept {
    return report_;
  }

 private:
  std::shared_ptr<const RunReport> report_;
};

/// Process-wide default fault injector (null = none). Per-run
/// RunOptions::injector overrides. Install only while no run is in flight.
void set_global_fault_injector(FaultInjector* injector) noexcept;
FaultInjector* global_fault_injector() noexcept;

/// Process-wide default watchdog deadline in seconds (0 = disabled).
/// Per-run RunOptions::watchdog_deadline_seconds >= 0 overrides.
void set_global_watchdog_deadline(double seconds) noexcept;
double global_watchdog_deadline() noexcept;

namespace detail {

/// Received payloads below this size are control-plane scalars (reduced
/// flags, value broadcasts) and are never corrupted: corrupting them could
/// make one rank's collective sequence diverge from its peers'.
inline constexpr std::size_t kMinCorruptiblePayloadBytes = 64;

/// An injected stall parks until the run is aborted around it; this bounds
/// the park so a stall without any watchdog cannot hang a test binary
/// forever.
inline constexpr double kStallFallbackSeconds = 30.0;

/// Heartbeat block one rank publishes for the watchdog; padded so the
/// watchdog's polling never false-shares with rank-local counters. All
/// fields are atomics because the watchdog thread reads them mid-run.
struct alignas(64) RankProgress {
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> superstep{0};
  std::atomic<const char*> collective{nullptr};
  std::atomic<RankState> state{RankState::kComputing};
};

/// Rank-local fault-hook state threaded through Comm (and into split()
/// children). Only the owning rank thread touches it, except `progress`,
/// which it shares with the watchdog through the atomics above.
struct alignas(64) RankControl {
  RankProgress* progress = nullptr;
  FaultInjector* injector = nullptr;
  int world_rank = 0;
  bool corrupt_pending = false;
};

}  // namespace detail
}  // namespace camc::bsp
