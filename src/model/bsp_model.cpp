#include "model/bsp_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace camc::model {
namespace {

double log2_safe(double x) { return std::log2(std::max(2.0, x)); }

}  // namespace

Bounds min_cut_bounds(const Instance& instance) {
  const double n = instance.n, m = instance.m, p = instance.p;
  const double lg = log2_safe(n);
  Bounds bounds;
  bounds.supersteps = std::max(1.0, std::log2(std::max(2.0, p * m / (n * n))));
  bounds.computation = n * n * lg * lg * lg / p;
  bounds.communication_volume = n * n * lg * lg * log2_safe(p) / p;
  bounds.cache_misses = n * n * lg * lg * lg / (instance.B * p);
  bounds.space = std::min(m, n * n * lg * lg / p);
  return bounds;
}

Bounds previous_bsp_bounds(const Instance& instance) {
  const double n = instance.n, m = instance.m, p = instance.p;
  (void)m;
  const double lg = log2_safe(n);
  const double lgp = log2_safe(p);
  Bounds bounds;
  bounds.supersteps = lg * lgp * lgp;
  bounds.computation = n * n * lg * lg * lg * lgp / p;
  bounds.communication_volume = n * n * lg * lg * lgp * lgp / p;
  bounds.cache_misses = 0;  // not studied in [4]
  bounds.space = n * n * lg * lg / p;
  return bounds;
}

Bounds co_karger_stein_bounds(const Instance& instance) {
  const double n = instance.n;
  const double lg = log2_safe(n);
  Bounds bounds;
  bounds.supersteps = 0;  // sequential
  bounds.computation = n * n * lg * lg * lg;
  bounds.communication_volume = 0;
  bounds.cache_misses = n * n * lg * lg * lg / instance.B;
  bounds.space = n * n;
  return bounds;
}

Bounds connected_components_bounds(const Instance& instance, double epsilon) {
  const double n = instance.n, m = instance.m, p = instance.p;
  const double sample = std::pow(n, 1.0 + epsilon);
  Bounds bounds;
  bounds.supersteps = 1;
  bounds.computation = m / p + sample;
  bounds.communication_volume = sample;
  bounds.cache_misses = m / (p * instance.B) + sample;
  bounds.space = m / p + sample;
  return bounds;
}

Bounds approx_min_cut_bounds(const Instance& instance, double epsilon) {
  const double n = instance.n, m = instance.m, p = instance.p;
  const double lg = log2_safe(n);
  const double sample = std::pow(n, 1.0 + epsilon);
  Bounds bounds;
  bounds.supersteps = 1;
  bounds.computation = m * lg * lg * lg / p + sample;
  bounds.communication_volume = sample;
  bounds.cache_misses = m * lg * lg / (p * instance.B) + sample;
  bounds.space = m / p + sample;
  return bounds;
}

double FittedModel::predict(const Bounds& bounds,
                            const Instance& instance) const {
  return comp_constant * bounds.computation +
         comm_constant * bounds.communication_volume *
             log2_safe(instance.p) +
         overhead;
}

FittedModel fit(std::span<const Observation> observations,
                Bounds (*bounds_of)(const Instance&)) {
  if (observations.empty())
    throw std::invalid_argument("fit: no observations");

  // Design matrix columns: computation, volume * log2 p, 1.
  const std::size_t k = observations.size() >= 3 ? 3 : 2;
  std::array<std::array<double, 3>, 3> normal{};
  std::array<double, 3> rhs{};
  for (const Observation& ob : observations) {
    const Bounds bounds = bounds_of(ob.instance);
    const std::array<double, 3> row{
        bounds.computation,
        bounds.communication_volume * log2_safe(ob.instance.p), 1.0};
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) normal[i][j] += row[i] * row[j];
      rhs[i] += row[i] * ob.seconds;
    }
  }

  // Gaussian elimination with partial pivoting on the k x k system.
  std::array<std::size_t, 3> perm{0, 1, 2};
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r)
      if (std::abs(normal[perm[r]][col]) > std::abs(normal[perm[pivot]][col]))
        pivot = r;
    std::swap(perm[col], perm[pivot]);
    const double diag = normal[perm[col]][col];
    if (std::abs(diag) < 1e-30) continue;  // degenerate column: leave 0
    for (std::size_t r = col + 1; r < k; ++r) {
      const double factor = normal[perm[r]][col] / diag;
      for (std::size_t c = col; c < k; ++c)
        normal[perm[r]][c] -= factor * normal[perm[col]][c];
      rhs[perm[r]] -= factor * rhs[perm[col]];
    }
  }
  std::array<double, 3> solution{};
  for (std::size_t col = k; col-- > 0;) {
    double value = rhs[perm[col]];
    for (std::size_t c = col + 1; c < k; ++c)
      value -= normal[perm[col]][c] * solution[c];
    const double diag = normal[perm[col]][col];
    solution[col] = std::abs(diag) < 1e-30 ? 0.0 : value / diag;
  }

  FittedModel model;
  model.comp_constant = std::max(0.0, solution[0]);
  model.comm_constant = std::max(0.0, solution[1]);
  model.overhead = k == 3 ? std::max(0.0, solution[2]) : 0.0;
  return model;
}

}  // namespace camc::model
