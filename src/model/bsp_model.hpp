#pragma once

// The paper's constant-factor performance model (§5, "Performance Model")
// and the asymptotic bounds of Table 1.
//
// The model translates BSP bounds into execution times: predicted time =
// c_comp * computation + c_comm * communication_volume * log(p) + c_0
// (the log p factor accounts for MPI implementation overhead [19]). The
// constants are fitted by least squares against measured runs and the
// fitted curve is overlaid on the strong-scaling figures (Figures 1, 6).

#include <cstdint>
#include <span>
#include <vector>

namespace camc::model {

/// Problem/machine parameters the bounds depend on.
struct Instance {
  double n = 0;  ///< vertices
  double m = 0;  ///< edges
  double p = 1;  ///< processors
  double B = 8;  ///< cache block size (words)
};

/// Asymptotic costs (Table 1 rows), up to constants.
struct Bounds {
  double supersteps = 0;
  double computation = 0;
  double communication_volume = 0;
  double cache_misses = 0;
  double space = 0;
};

/// Row 2 of Table 1: this paper's minimum cut algorithm.
Bounds min_cut_bounds(const Instance& instance);

/// Row 1 of Table 1: the previous BSP algorithm [4] (cache misses were
/// never analyzed; reported as 0).
Bounds previous_bsp_bounds(const Instance& instance);

/// Row 3 of Table 1: sequential CO Karger-Stein [13] (no BSP quantities).
Bounds co_karger_stein_bounds(const Instance& instance);

/// §3.2 connected components bounds (epsilon enters the n^(1+eps) terms).
Bounds connected_components_bounds(const Instance& instance, double epsilon);

/// §3.3 approximate minimum cut bounds.
Bounds approx_min_cut_bounds(const Instance& instance, double epsilon);

/// One measured run used for fitting.
struct Observation {
  Instance instance;
  double seconds = 0;
};

/// Fitted time model: seconds(instance) =
/// comp_constant * computation + comm_constant * volume * log2(p) + overhead.
struct FittedModel {
  double comp_constant = 0;
  double comm_constant = 0;
  double overhead = 0;

  double predict(const Bounds& bounds, const Instance& instance) const;
};

/// Least-squares fit of the three constants against observations whose
/// bounds are produced by `bounds_of`. Requires >= 3 observations; with
/// fewer, the comm term is dropped.
FittedModel fit(std::span<const Observation> observations,
                Bounds (*bounds_of)(const Instance&));

}  // namespace camc::model
