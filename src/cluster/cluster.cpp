#include "cluster/cluster.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

namespace camc::cluster {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_to_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds < 0.0 ? 0.0 : seconds));
}

svc::Json base_response(std::uint64_t id) {
  return svc::Json::object().set("v", 1).set("id", id);
}

svc::Json error_response(std::uint64_t id, const std::string& message) {
  return base_response(id).set("status", "error").set("error", message);
}

/// True for the ops that are scoped to one graph keyspace and mutate it —
/// these fan out to every replica so a crashed replica can be replaced
/// without losing the keyspace.
bool is_replicated_write(const std::string& op) {
  return op == "gen" || op == "load" || op == "save" || op == "evict" ||
         op == "add_edges" || op == "remove_edges";
}

}  // namespace

const char* shard_state_name(ShardState state) noexcept {
  switch (state) {
    case ShardState::kUp:
      return "up";
    case ShardState::kBackoff:
      return "backoff";
    case ShardState::kStopped:
      return "stopped";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Internal state

/// A request fanned out to several shards at once (stats, replicated
/// writes). Members share one Fanout; the last response (or death)
/// finalizes it.
struct Cluster::Fanout {
  std::uint64_t client_id = 0;
  Emit emit;
  std::string op;
  std::string graph;
  std::size_t primary = 0;  ///< shard whose answer becomes the reply
  std::size_t awaiting = 0;
  /// (shard, response); response is null for a replica that died first.
  std::vector<std::pair<std::size_t, svc::Json>> responses;
};

/// One forwarded request line awaiting a worker response.
struct Cluster::Pending {
  std::uint64_t internal_id = 0;  ///< the id on the wire to the worker
  std::uint64_t client_id = 0;
  Emit emit;         ///< null for internal traffic (pings, auto-saves)
  std::string op;
  std::string graph;
  std::string line;  ///< request serialized with internal_id, '\n'-terminated
  std::size_t target = 0;
  std::vector<std::size_t> fallbacks;  ///< replicas not yet tried
  std::shared_ptr<Fanout> fanout;
  bool internal = false;
  bool sent = false;  ///< reached a worker at least once (reroute vs
                      ///< re-dispatch accounting)
  std::shared_ptr<std::atomic<bool>> probe;  ///< wait_for_shard_up flag
};

struct Cluster::Shard {
  std::size_t index = 0;

  // Pipe + process handle. `write_mutex` guards to_child/generation for
  // writers and for the close path, so a request line can never land on a
  // recycled fd: the fd is only closed under write_mutex together with a
  // generation bump, and every write re-checks the generation it targeted.
  std::mutex write_mutex;
  pid_t pid = -1;
  int to_child = -1;
  std::uint64_t generation = 0;

  ShardState state = ShardState::kBackoff;
  bool reap_pending = false;   ///< death detected; waitpid still owed
  bool eof_seen = true;        ///< reader thread finished (safe to join)
  bool term_sent = false;      ///< supervisor escalation: SIGTERM fired
  bool heartbeat_kill = false; ///< death was supervisor-initiated
  Clock::time_point kill_deadline{};
  std::uint32_t missed_pings = 0;

  std::uint32_t backoff_attempt = 0;
  Clock::time_point restart_at{};
  Clock::time_point started_at{};

  std::uint64_t restarts = 0;
  std::uint64_t deaths_exit = 0;
  std::uint64_t deaths_signal = 0;
  std::uint64_t deaths_heartbeat = 0;
  std::string last_death;

  std::thread reader;
};

struct Cluster::Impl {
  ClusterOptions options;
  const ShardMap* map = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Shard>> shards;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending;
  std::atomic<std::uint64_t> next_internal_id{1};
  bool stopping = false;

  // Counters (all guarded by mutex).
  std::uint64_t read_rr = 0;        ///< round-robin cursor for query routing
  std::uint64_t reads_balanced = 0; ///< queries started on a non-primary
  std::uint64_t reroutes = 0;      ///< routed past a down replica at submit
  std::uint64_t redispatched = 0;  ///< in-flight request moved off a death
  std::uint64_t unknown_graph_failovers = 0;  ///< query retried on a peer
                                              ///< after "no such graph"
  std::uint64_t degraded = 0;
  std::uint64_t stale_responses = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t save_failures = 0;
  std::uint64_t auto_saves = 0;
  std::uint64_t chaos_kills = 0;
  std::uint64_t chaos_stalls = 0;
  std::uint64_t worker_protocol_errors = 0;

  Clock::time_point start_time{};
  ChaosPlan chaos;
  std::thread supervisor;
  std::thread chaos_thread;

  /// Deferred emits: every decision happens under `mutex`, every emit
  /// fires after it is released (the callback may be arbitrarily slow and
  /// may re-enter nothing of ours, but holding a lock across it would
  /// serialize all shards behind one client write).
  struct Outbox {
    std::vector<std::pair<Emit, std::string>> lines;
    void add(const Emit& emit, svc::Json response) {
      if (emit) lines.emplace_back(emit, response.dump());
    }
    void flush() {
      for (auto& [emit, line] : lines) emit(line);
      lines.clear();
    }
  };

  // --- process plumbing ----------------------------------------------------

  void spawn_shard_locked(Shard& shard);
  void reader_loop(std::size_t index, std::uint64_t generation, int fd);
  bool write_to_shard(Shard& shard, std::uint64_t generation,
                      const std::string& line);
  void close_pipe_locked(Shard& shard);

  // --- routing -------------------------------------------------------------

  std::uint64_t fresh_id() { return next_internal_id.fetch_add(1); }
  void dispatch(const std::shared_ptr<Pending>& p);
  bool advance_to_live_target_locked(const std::shared_ptr<Pending>& p);
  svc::Json degraded_response_locked(const Pending& p);
  void finalize_fanout_locked(const std::shared_ptr<Fanout>& fanout,
                              Outbox& outbox);
  svc::Json aggregate_stats_locked(const Fanout& fanout);
  void schedule_auto_saves_locked(
      const Fanout& fanout, std::vector<std::shared_ptr<Pending>>& to_send);

  // --- death handling ------------------------------------------------------

  void on_worker_line(std::size_t index, std::uint64_t generation,
                      const std::string& line);
  void on_worker_eof(std::size_t index, std::uint64_t generation);
  void classify_death_locked(Shard& shard, int status);

  // --- supervision ---------------------------------------------------------

  void supervisor_loop();
  void chaos_loop();

  svc::Json cluster_stats_locked() const;
};

// ---------------------------------------------------------------------------
// Process plumbing

void Cluster::Impl::spawn_shard_locked(Shard& shard) {
  int to_child_pipe[2];   // router -> worker stdin
  int from_child_pipe[2]; // worker stdout -> router
  if (pipe2(to_child_pipe, O_CLOEXEC) != 0)
    throw std::runtime_error("cluster: pipe2 failed: " +
                             std::string(std::strerror(errno)));
  if (pipe2(from_child_pipe, O_CLOEXEC) != 0) {
    ::close(to_child_pipe[0]);
    ::close(to_child_pipe[1]);
    throw std::runtime_error("cluster: pipe2 failed: " +
                             std::string(std::strerror(errno)));
  }

  // argv must be assembled before fork(): the child of a multithreaded
  // process may only call async-signal-safe functions before exec.
  std::vector<std::string> args;
  args.push_back(options.serve_path);
  args.push_back("--threads=" + std::to_string(options.worker_threads));
  args.push_back("--queue=" + std::to_string(options.worker_queue));
  args.push_back("--batch=" + std::to_string(options.worker_batch));
  args.push_back("--cache=" + std::to_string(options.worker_cache));
  args.push_back("--seed=" + std::to_string(options.worker_seed));
  if (!options.worker_cc_engine.empty())
    args.push_back("--cc-engine=" + options.worker_cc_engine);
  if (!options.store_dir.empty()) {
    const std::string dir =
        options.store_dir + "/shard-" + std::to_string(shard.index);
    std::filesystem::create_directories(dir);
    args.push_back("--store-dir=" + dir);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    ::close(to_child_pipe[0]);
    ::close(to_child_pipe[1]);
    ::close(from_child_pipe[0]);
    ::close(from_child_pipe[1]);
    throw std::runtime_error("cluster: fork failed: " +
                             std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: wire the pipes to stdio and exec. dup2 clears CLOEXEC on the
    // duplicates; every other pipe end closes itself at exec.
    ::dup2(to_child_pipe[0], STDIN_FILENO);
    ::dup2(from_child_pipe[1], STDOUT_FILENO);
    ::signal(SIGPIPE, SIG_DFL);
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; classified as "exit 127" by the reaper
  }

  ::close(to_child_pipe[0]);
  ::close(from_child_pipe[1]);
  // Nonblocking writes keep a wedged worker (full pipe) from wedging the
  // router: write_to_shard bounds its poll and fails over instead.
  const int flags = fcntl(to_child_pipe[1], F_GETFL, 0);
  fcntl(to_child_pipe[1], F_SETFL, flags | O_NONBLOCK);

  {
    std::lock_guard<std::mutex> write_lock(shard.write_mutex);
    shard.pid = pid;
    shard.to_child = to_child_pipe[1];
    ++shard.generation;
  }
  shard.state = ShardState::kUp;
  shard.reap_pending = false;
  shard.eof_seen = false;
  shard.term_sent = false;
  shard.heartbeat_kill = false;
  shard.missed_pings = 0;
  shard.started_at = Clock::now();

  const std::size_t index = shard.index;
  const std::uint64_t generation = shard.generation;
  const int read_fd = from_child_pipe[0];
  shard.reader = std::thread(
      [this, index, generation, read_fd] { reader_loop(index, generation, read_fd); });
}

void Cluster::Impl::reader_loop(std::size_t index, std::uint64_t generation,
                                int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t newline = buffer.find('\n', start);
        if (newline == std::string::npos) break;
        on_worker_line(index, generation,
                       buffer.substr(start, newline - start));
        start = newline + 1;
      }
      buffer.erase(0, start);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or error: the worker is gone
  }
  ::close(fd);
  // A worker can only emit whole lines; a trailing fragment means it died
  // mid-write. There is no id to answer, so it is only counted.
  on_worker_eof(index, generation);
  {
    // Final act: flag the reader as joinable. Nothing below this lock
    // touches shared state, so the supervisor can join without deadlock.
    std::lock_guard<std::mutex> lock(mutex);
    if (!buffer.empty()) ++worker_protocol_errors;
    Shard& shard = *shards[index];
    if (shard.generation == generation) shard.eof_seen = true;
  }
  cv.notify_all();
}

bool Cluster::Impl::write_to_shard(Shard& shard, std::uint64_t generation,
                                   const std::string& line) {
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  if (shard.generation != generation || shard.to_child < 0) return false;
  const char* data = line.data();
  std::size_t remaining = line.size();
  const Clock::time_point deadline = Clock::now() + seconds_to_duration(0.25);
  while (remaining > 0) {
    const ssize_t n = ::write(shard.to_child, data, remaining);
    if (n > 0) {
      data += n;
      remaining -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Clock::now() >= deadline) return false;  // wedged worker
      pollfd pfd{shard.to_child, POLLOUT, 0};
      ::poll(&pfd, 1, 10);
      continue;
    }
    return false;  // EPIPE etc.: worker dead; the EOF path cleans up
  }
  return true;
}

void Cluster::Impl::close_pipe_locked(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  if (shard.to_child >= 0) {
    ::close(shard.to_child);
    shard.to_child = -1;
  }
  ++shard.generation;  // strands in-flight writers targeting the old pipe
}

// ---------------------------------------------------------------------------
// Routing

/// Walks the pending's target + fallback list to the first live shard.
/// Returns false when every replica of the keyspace is down.
bool Cluster::Impl::advance_to_live_target_locked(
    const std::shared_ptr<Pending>& p) {
  if (shards[p->target]->state == ShardState::kUp) return true;
  while (!p->fallbacks.empty()) {
    const std::size_t candidate = p->fallbacks.front();
    p->fallbacks.erase(p->fallbacks.begin());
    if (shards[candidate]->state == ShardState::kUp) {
      p->target = candidate;
      if (p->sent) {
        ++redispatched;
        p->sent = false;  // the move to `candidate` hasn't landed yet
      } else {
        ++reroutes;
      }
      return true;
    }
  }
  return false;
}

svc::Json Cluster::Impl::degraded_response_locked(const Pending& p) {
  svc::Json response =
      base_response(p.client_id)
          .set("status", "degraded")
          .set("error", "shard " + std::to_string(p.target) +
                            " down (restart pending)")
          .set("shard", static_cast<std::uint64_t>(p.target));
  if (!p.graph.empty()) response.set("graph", p.graph);
  ++degraded;
  return response;
}

/// Sends a routed pending to its current target, failing over down the
/// replica list on dead shards and wedged pipes; answers degraded when the
/// keyspace has no live replica. Runs lock-free around the actual write.
void Cluster::Impl::dispatch(const std::shared_ptr<Pending>& p) {
  for (;;) {
    Shard* shard = nullptr;
    std::uint64_t generation = 0;
    Outbox outbox;
    {
      std::unique_lock<std::mutex> lock(mutex);
      if (pending.find(p->internal_id) == pending.end()) return;  // answered
      if (!advance_to_live_target_locked(p)) {
        if (!p->internal) outbox.add(p->emit, degraded_response_locked(*p));
        pending.erase(p->internal_id);
        lock.unlock();
        outbox.flush();
        cv.notify_all();
        return;
      }
      shard = shards[p->target].get();
      generation = shard->generation;
    }
    if (write_to_shard(*shard, generation, p->line)) {
      std::lock_guard<std::mutex> lock(mutex);
      p->sent = true;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++send_failures;
      // Don't retry the same shard: mark it unreachable for this pending
      // by forcing the fallback walk (the shard itself is reaped by the
      // supervisor when its pipe actually dies).
      if (shards[p->target]->state == ShardState::kUp && p->fallbacks.empty()) {
        // Live-but-wedged with no replica to go to: degrade rather than
        // spin. The heartbeat will declare the shard dead shortly.
        Outbox degraded_outbox;
        if (!p->internal)
          degraded_outbox.add(p->emit, degraded_response_locked(*p));
        pending.erase(p->internal_id);
        outbox = std::move(degraded_outbox);
      } else if (shards[p->target]->state == ShardState::kUp) {
        const std::size_t candidate = p->fallbacks.front();
        p->fallbacks.erase(p->fallbacks.begin());
        if (p->sent)
          ++redispatched;
        else
          ++reroutes;
        p->target = candidate;
        p->sent = false;
        continue;
      } else {
        continue;  // target died under us; the loop re-walks fallbacks
      }
    }
    outbox.flush();
    cv.notify_all();
    return;
  }
}

svc::Json Cluster::Impl::aggregate_stats_locked(const Fanout& fanout) {
  svc::Json shard_array = svc::Json::array();
  // Summed across shards: the counter block of each worker's
  // result.total (svc::Service::stats_json).
  static const char* kSummed[] = {"submitted", "ok",     "rejected",
                                  "shed",      "failed", "errors",
                                  "cache_hits", "coalesced"};
  svc::Json total = svc::Json::object();
  std::vector<std::uint64_t> sums(std::size(kSummed), 0);
  for (const auto& [index, response] : fanout.responses) {
    svc::Json entry = svc::Json::object()
                          .set("shard", static_cast<std::uint64_t>(index))
                          .set("alive", !response.is_null());
    if (!response.is_null() && response["result"].is_object()) {
      const svc::Json& worker_total = response["result"]["total"];
      for (std::size_t k = 0; k < std::size(kSummed); ++k)
        if (worker_total[kSummed[k]].is_number())
          sums[k] += worker_total[kSummed[k]].as_u64();
      entry.set("stats", response["result"]);
    }
    shard_array.push_back(std::move(entry));
  }
  for (std::size_t k = 0; k < std::size(kSummed); ++k)
    total.set(kSummed[k], sums[k]);
  return svc::Json::object()
      .set("cluster", cluster_stats_locked())
      .set("total", std::move(total))
      .set("shards", std::move(shard_array));
}

void Cluster::Impl::schedule_auto_saves_locked(
    const Fanout& fanout, std::vector<std::shared_ptr<Pending>>& to_send) {
  if (options.store_dir.empty() || !options.auto_save) return;
  if (fanout.op != "gen" && fanout.op != "load") return;
  for (const auto& [index, response] : fanout.responses) {
    if (response.is_null() || !response["status"].is_string() ||
        response["status"].as_string() != "ok")
      continue;
    auto save = std::make_shared<Pending>();
    save->internal_id = fresh_id();
    save->internal = true;
    save->op = "save";
    save->graph = fanout.graph;
    save->target = index;
    save->line = svc::Json::object()
                     .set("id", save->internal_id)
                     .set("op", "save")
                     .set("graph", fanout.graph)
                     .dump() +
                 "\n";
    pending.emplace(save->internal_id, save);
    ++auto_saves;
    to_send.push_back(std::move(save));
  }
}

void Cluster::Impl::finalize_fanout_locked(
    const std::shared_ptr<Fanout>& fanout, Outbox& outbox) {
  if (fanout->op == "stats") {
    outbox.add(fanout->emit, base_response(fanout->client_id)
                                 .set("status", "ok")
                                 .set("result", aggregate_stats_locked(*fanout)));
    return;
  }
  // Replicated write: answer with the primary's response if it survived,
  // else the first surviving replica's; all dead → degraded.
  const svc::Json* best = nullptr;
  for (const auto& [index, response] : fanout->responses)
    if (!response.is_null() && (best == nullptr || index == fanout->primary))
      best = &response;
  if (best == nullptr) {
    Pending ghost;
    ghost.client_id = fanout->client_id;
    ghost.target = fanout->primary;
    ghost.graph = fanout->graph;
    outbox.add(fanout->emit, degraded_response_locked(ghost));
    return;
  }
  svc::Json response = *best;
  response.set("id", fanout->client_id);
  outbox.add(fanout->emit, std::move(response));
}

// ---------------------------------------------------------------------------
// Worker responses and deaths

void Cluster::Impl::on_worker_line(std::size_t index, std::uint64_t generation,
                                   const std::string& line) {
  svc::Json response;
  try {
    response = svc::Json::parse(line);
  } catch (const std::exception&) {
    std::lock_guard<std::mutex> lock(mutex);
    ++worker_protocol_errors;
    return;
  }
  if (!response.is_object() || !response["id"].is_number()) {
    std::lock_guard<std::mutex> lock(mutex);
    ++worker_protocol_errors;
    return;
  }
  const std::uint64_t internal_id = response["id"].as_u64();

  Outbox outbox;
  std::vector<std::shared_ptr<Pending>> to_send;
  {
    std::unique_lock<std::mutex> lock(mutex);
    Shard& shard = *shards[index];
    if (shard.generation == generation) shard.missed_pings = 0;

    const auto it = pending.find(internal_id);
    if (it == pending.end()) {
      // A response for a request that was re-dispatched (or degraded)
      // after this worker was declared dead — the other copy already
      // answered the client with the identical deterministic result.
      ++stale_responses;
      return;
    }
    const std::shared_ptr<Pending> p = it->second;
    pending.erase(it);

    if (p->internal) {
      if (p->op == "save" && (!response["status"].is_string() ||
                              response["status"].as_string() != "ok"))
        ++save_failures;
      if (p->probe) p->probe->store(true);
    } else if (p->fanout) {
      p->fanout->responses.emplace_back(p->target, std::move(response));
      if (--p->fanout->awaiting == 0) {
        finalize_fanout_locked(p->fanout, outbox);
        schedule_auto_saves_locked(*p->fanout, to_send);
      }
    } else {
      // A replica that restarted cold (no store dir to rehydrate from)
      // answers queries for the graphs it lost with "no such graph" even
      // while a peer replica still holds them. That is a routing problem,
      // not the client's answer: walk the remaining replicas before
      // giving up. (A genuinely unstaged graph fails on every replica and
      // the final error propagates unchanged.)
      bool retried = false;
      if (p->op == "query" && response["status"].is_string() &&
          response["status"].as_string() == "error" &&
          response["error"].is_string() &&
          response["error"].as_string() == "no such graph") {
        while (!p->fallbacks.empty()) {
          const std::size_t candidate = p->fallbacks.front();
          p->fallbacks.erase(p->fallbacks.begin());
          if (shards[candidate]->state == ShardState::kUp) {
            p->target = candidate;
            p->sent = false;
            ++unknown_graph_failovers;
            pending[p->internal_id] = p;
            to_send.push_back(p);
            retried = true;
            break;
          }
        }
      }
      if (!retried) {
        response.set("id", p->client_id);
        outbox.add(p->emit, std::move(response));
      }
    }
  }
  outbox.flush();
  for (const std::shared_ptr<Pending>& p : to_send) dispatch(p);
  cv.notify_all();
}

void Cluster::Impl::on_worker_eof(std::size_t index, std::uint64_t generation) {
  Outbox outbox;
  std::vector<std::shared_ptr<Pending>> to_redispatch;
  {
    std::unique_lock<std::mutex> lock(mutex);
    Shard& shard = *shards[index];
    if (shard.generation != generation) return;  // stale reader
    if (shard.state == ShardState::kUp) shard.state = ShardState::kBackoff;
    shard.reap_pending = true;

    // Sweep every pending aimed at the dead shard.
    std::vector<std::shared_ptr<Pending>> victims;
    for (const auto& [id, p] : pending)
      if (p->target == index) victims.push_back(p);
    for (const std::shared_ptr<Pending>& p : victims) {
      if (p->internal) {
        if (p->op == "save") ++save_failures;
        pending.erase(p->internal_id);
      } else if (p->fanout) {
        p->fanout->responses.emplace_back(p->target, svc::Json());
        pending.erase(p->internal_id);
        if (--p->fanout->awaiting == 0) {
          finalize_fanout_locked(p->fanout, outbox);
          std::vector<std::shared_ptr<Pending>> saves;
          schedule_auto_saves_locked(*p->fanout, saves);
          for (auto& save : saves) to_redispatch.push_back(std::move(save));
        }
      } else {
        // In-flight query: dispatch() below walks it to the next live
        // replica (idempotent re-execution) or answers degraded.
        to_redispatch.push_back(p);
      }
    }
  }
  outbox.flush();
  for (const std::shared_ptr<Pending>& p : to_redispatch) dispatch(p);
  cv.notify_all();
}

void Cluster::Impl::classify_death_locked(Shard& shard, int status) {
  if (shard.heartbeat_kill) {
    ++shard.deaths_heartbeat;
    shard.last_death = "heartbeat-timeout";
  } else if (WIFSIGNALED(status)) {
    ++shard.deaths_signal;
    shard.last_death = "signal " + std::to_string(WTERMSIG(status));
  } else if (WIFEXITED(status)) {
    ++shard.deaths_exit;
    shard.last_death = "exit " + std::to_string(WEXITSTATUS(status));
  } else {
    ++shard.deaths_exit;
    shard.last_death = "unknown";
  }
}

// ---------------------------------------------------------------------------
// Supervision

void Cluster::Impl::supervisor_loop() {
  const auto interval =
      seconds_to_duration(std::max(1e-3, options.heartbeat_interval_seconds));
  std::unique_lock<std::mutex> lock(mutex);
  while (true) {
    cv.wait_for(lock, interval, [this] { return stopping; });
    const Clock::time_point now = Clock::now();

    struct PingJob {
      Shard* shard;
      std::uint64_t generation;
      std::shared_ptr<Pending> pending;
    };
    std::vector<PingJob> pings;

    for (const std::unique_ptr<Shard>& owned : shards) {
      Shard& shard = *owned;

      // Heartbeats and escalation for live shards.
      if (shard.state == ShardState::kUp && !shard.reap_pending) {
        if (shard.term_sent && now >= shard.kill_deadline) {
          ::kill(shard.pid, SIGKILL);  // SIGTERM grace expired (or SIGSTOP)
          shard.kill_deadline = now + seconds_to_duration(1.0);
        } else if (!shard.term_sent &&
                   shard.missed_pings >= options.heartbeat_miss_limit) {
          // Wedged: give it SIGTERM first so camc_serve can flush its
          // persist layer, then SIGKILL after the grace period (a
          // SIGSTOPped worker only dies at the SIGKILL step).
          shard.heartbeat_kill = true;
          shard.term_sent = true;
          shard.kill_deadline =
              now + seconds_to_duration(options.kill_grace_seconds);
          ::kill(shard.pid, SIGTERM);
        } else if (!shard.term_sent) {
          auto ping = std::make_shared<Pending>();
          ping->internal_id = fresh_id();
          ping->internal = true;
          ping->op = "ping";
          ping->target = shard.index;
          ping->line = svc::Json::object()
                           .set("id", ping->internal_id)
                           .set("op", "ping")
                           .dump() +
                       "\n";
          pending.emplace(ping->internal_id, ping);
          ++shard.missed_pings;
          pings.push_back({&shard, shard.generation, ping});
        }
      }

      // Reap: EOF seen and reader finished — classify and schedule.
      if (shard.reap_pending && shard.eof_seen) {
        int status = 0;
        const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
        if (reaped == shard.pid || reaped < 0) {
          if (reaped == shard.pid) classify_death_locked(shard, status);
          close_pipe_locked(shard);
          if (shard.reader.joinable()) shard.reader.join();
          shard.reap_pending = false;
          shard.term_sent = false;
          shard.heartbeat_kill = false;
          shard.pid = -1;
          if (stopping || (options.max_restarts > 0 &&
                           shard.restarts >= options.max_restarts)) {
            shard.state = ShardState::kStopped;
          } else {
            const double uptime =
                std::chrono::duration<double>(now - shard.started_at).count();
            if (uptime >= options.backoff_reset_uptime_seconds)
              shard.backoff_attempt = 0;
            const double delay =
                resilience::backoff_delay(options.restart, shard.backoff_attempt,
                                          /*salt=*/shard.index);
            ++shard.backoff_attempt;
            shard.restart_at = now + seconds_to_duration(delay);
          }
        }
      }

      // Restart once the (jittered) backoff expires.
      if (shard.state == ShardState::kBackoff && shard.pid < 0 && !stopping &&
          now >= shard.restart_at) {
        try {
          spawn_shard_locked(shard);
          ++shard.restarts;
        } catch (const std::exception&) {
          shard.restart_at = now + seconds_to_duration(resilience::backoff_delay(
                                       options.restart, shard.backoff_attempt,
                                       shard.index));
          ++shard.backoff_attempt;
        }
      }
    }

    if (stopping) return;

    // Send heartbeats without the cluster lock (a wedged worker's full
    // pipe must not stall supervision of the others).
    lock.unlock();
    for (const PingJob& job : pings) {
      if (!write_to_shard(*job.shard, job.generation, job.pending->line)) {
        std::lock_guard<std::mutex> relock(mutex);
        pending.erase(job.pending->internal_id);
      }
    }
    cv.notify_all();
    lock.lock();
  }
}

void Cluster::Impl::chaos_loop() {
  std::unique_lock<std::mutex> lock(mutex);
  for (const ChaosEvent& event : chaos.events) {
    const Clock::time_point at =
        start_time + seconds_to_duration(event.at_seconds);
    if (cv.wait_until(lock, at, [this] { return stopping; })) return;
    Shard& shard = *shards[event.shard];
    if (shard.state != ShardState::kUp || shard.pid < 0 || shard.reap_pending)
      continue;  // already dead/restarting; the schedule marches on
    if (event.action == ChaosAction::kKill) {
      ++chaos_kills;
      ::kill(shard.pid, SIGKILL);  // pipe-EOF detection path
    } else {
      ++chaos_stalls;
      ::kill(shard.pid, SIGSTOP);  // heartbeat-timeout detection path
    }
  }
}

svc::Json Cluster::Impl::cluster_stats_locked() const {
  std::uint64_t live = 0, restarts = 0, deaths_exit = 0, deaths_signal = 0,
                deaths_heartbeat = 0;
  svc::Json shard_status = svc::Json::array();
  for (const std::unique_ptr<Shard>& owned : shards) {
    const Shard& shard = *owned;
    if (shard.state == ShardState::kUp) ++live;
    restarts += shard.restarts;
    deaths_exit += shard.deaths_exit;
    deaths_signal += shard.deaths_signal;
    deaths_heartbeat += shard.deaths_heartbeat;
    svc::Json entry =
        svc::Json::object()
            .set("shard", static_cast<std::uint64_t>(shard.index))
            .set("state", shard_state_name(shard.state))
            .set("pid", static_cast<std::int64_t>(shard.pid))
            .set("restarts", shard.restarts);
    if (!shard.last_death.empty()) entry.set("last_death", shard.last_death);
    shard_status.push_back(std::move(entry));
  }
  return svc::Json::object()
      .set("shards", static_cast<std::uint64_t>(shards.size()))
      .set("replication", static_cast<std::uint64_t>(map->replication()))
      .set("live", live)
      .set("restarts", restarts)
      .set("deaths", svc::Json::object()
                         .set("exit", deaths_exit)
                         .set("signal", deaths_signal)
                         .set("heartbeat_timeout", deaths_heartbeat))
      .set("reads_balanced", reads_balanced)
      .set("reroutes", reroutes)
      .set("redispatched", redispatched)
      .set("unknown_graph_failovers", unknown_graph_failovers)
      .set("degraded", degraded)
      .set("stale_responses", stale_responses)
      .set("send_failures", send_failures)
      .set("auto_saves", auto_saves)
      .set("save_failures", save_failures)
      .set("worker_protocol_errors", worker_protocol_errors)
      .set("chaos", svc::Json::object()
                        .set("kills", chaos_kills)
                        .set("stalls", chaos_stalls))
      .set("shard_status", std::move(shard_status));
}

// ---------------------------------------------------------------------------
// Cluster façade

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      map_(std::max<std::size_t>(1, options.shards), options.replication),
      impl_(std::make_unique<Impl>()) {
  if (options_.serve_path.empty())
    throw std::runtime_error("cluster: serve_path is required");
  options_.shards = map_.shards();
  options_.replication = map_.replication();

  // A dead worker must surface as a failed write / pipe EOF, not a
  // router-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  impl_->options = options_;
  impl_->map = &map_;
  impl_->chaos = parse_chaos_plan(options_.chaos_plan, options_.shards);
  impl_->start_time = Clock::now();

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (std::size_t index = 0; index < options_.shards; ++index) {
      auto shard = std::make_unique<Shard>();
      shard->index = index;
      impl_->shards.push_back(std::move(shard));
    }
    for (const std::unique_ptr<Shard>& shard : impl_->shards)
      impl_->spawn_shard_locked(*shard);
  }
  impl_->supervisor = std::thread([impl = impl_.get()] { impl->supervisor_loop(); });
  if (!impl_->chaos.empty())
    impl_->chaos_thread = std::thread([impl = impl_.get()] { impl->chaos_loop(); });
}

Cluster::~Cluster() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->chaos_thread.joinable()) impl_->chaos_thread.join();
  if (impl_->supervisor.joinable()) impl_->supervisor.join();

  // Close every worker stdin: a clean camc_serve drains and exits on EOF.
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const std::unique_ptr<Shard>& shard : impl_->shards)
      impl_->close_pipe_locked(*shard);
    impl_->pending.clear();
  }

  // Escalating reap: EOF grace, then SIGTERM, then SIGKILL.
  for (const std::unique_ptr<Shard>& owned : impl_->shards) {
    Shard& shard = *owned;
    if (shard.pid > 0) {
      int status = 0;
      bool reaped = false;
      for (int phase = 0; phase < 3 && !reaped; ++phase) {
        const Clock::time_point deadline =
            Clock::now() + seconds_to_duration(phase == 0 ? 2.0 : 1.0);
        while (Clock::now() < deadline) {
          if (::waitpid(shard.pid, &status, WNOHANG) != 0) {
            reaped = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (!reaped) ::kill(shard.pid, phase == 0 ? SIGTERM : SIGKILL);
      }
      if (!reaped) ::waitpid(shard.pid, &status, 0);
    }
    if (shard.reader.joinable()) shard.reader.join();
  }
}

bool Cluster::handle_line(const std::string& line, const Emit& emit) {
  Impl& impl = *impl_;
  svc::Json request;
  std::uint64_t client_id = 0;
  try {
    request = svc::Json::parse(line);
    if (!request.is_object()) throw std::runtime_error("request not an object");
    if (request["id"].is_number()) client_id = request["id"].as_u64();
    const std::string& op = request["op"].is_string()
                                ? request["op"].as_string()
                                : throw std::runtime_error("missing op");

    if (op == "ping") {
      // The router answers for itself: a ping probes the front-end, the
      // aggregated stats op probes the shards.
      emit(base_response(client_id).set("status", "ok").dump());
      return true;
    }

    if (op == "shutdown") {
      std::vector<std::shared_ptr<Pending>> to_send;
      {
        std::lock_guard<std::mutex> lock(impl.mutex);
        impl.stopping = true;
        for (const std::unique_ptr<Shard>& shard : impl.shards) {
          if (shard->state != ShardState::kUp) continue;
          auto p = std::make_shared<Pending>();
          p->internal_id = impl.fresh_id();
          p->internal = true;
          p->op = "shutdown";
          p->target = shard->index;
          p->line = svc::Json::object()
                        .set("id", p->internal_id)
                        .set("op", "shutdown")
                        .dump() +
                    "\n";
          impl.pending.emplace(p->internal_id, p);
          to_send.push_back(std::move(p));
        }
      }
      impl.cv.notify_all();
      for (const std::shared_ptr<Pending>& p : to_send) impl.dispatch(p);
      emit(base_response(client_id).set("status", "ok").dump());
      return false;
    }

    if (op == "stats") {
      std::vector<std::shared_ptr<Pending>> to_send;
      bool answer_now = false;
      svc::Json immediate;
      {
        std::lock_guard<std::mutex> lock(impl.mutex);
        auto fanout = std::make_shared<Fanout>();
        fanout->client_id = client_id;
        fanout->emit = emit;
        fanout->op = "stats";
        for (const std::unique_ptr<Shard>& shard : impl.shards) {
          if (shard->state != ShardState::kUp) {
            fanout->responses.emplace_back(shard->index, svc::Json());
            continue;
          }
          auto p = std::make_shared<Pending>();
          p->internal_id = impl.fresh_id();
          p->client_id = client_id;
          p->emit = emit;
          p->op = "stats";
          p->target = shard->index;
          p->fanout = fanout;
          p->line = svc::Json::object()
                        .set("id", p->internal_id)
                        .set("op", "stats")
                        .dump() +
                    "\n";
          impl.pending.emplace(p->internal_id, p);
          ++fanout->awaiting;
          to_send.push_back(std::move(p));
        }
        if (fanout->awaiting == 0) {
          // Whole cluster down: still answer, from the router's view.
          answer_now = true;
          immediate = base_response(client_id)
                          .set("status", "ok")
                          .set("result", impl.aggregate_stats_locked(*fanout));
        }
      }
      if (answer_now) {
        emit(immediate.dump());
        return true;
      }
      for (const std::shared_ptr<Pending>& p : to_send) impl.dispatch(p);
      return true;
    }

    const bool replicated = is_replicated_write(op);
    const bool query = op == "query";
    if (!replicated && !query) throw std::runtime_error("unknown op '" + op + "'");
    if (!request["graph"].is_string())
      throw std::runtime_error("cluster routing requires \"graph\"");
    const std::string& graph = request["graph"].as_string();
    const std::vector<std::size_t> replicas = map_.replicas(graph);

    if (query) {
      auto p = std::make_shared<Pending>();
      p->client_id = client_id;
      p->emit = emit;
      p->op = op;
      p->graph = graph;
      {
        std::lock_guard<std::mutex> lock(impl.mutex);
        // Read load-balancing: seeded round-robin over the keyspace's
        // replicas instead of always hammering the primary. Replicated
        // writes fan out to every replica, so any of them can answer;
        // the rotated fallback order preserves failover past down shards
        // (advance_to_live_target_locked walks it as before).
        std::size_t start = 0;
        if (impl.options.read_balance && replicas.size() > 1) {
          start = static_cast<std::size_t>(
              (impl.options.read_balance_seed + impl.read_rr++) %
              replicas.size());
          if (start != 0) ++impl.reads_balanced;
        }
        p->target = replicas[start];
        for (std::size_t i = 1; i < replicas.size(); ++i)
          p->fallbacks.push_back(replicas[(start + i) % replicas.size()]);
        p->internal_id = impl.fresh_id();
        request.set("id", p->internal_id);
        p->line = request.dump() + "\n";
        impl.pending.emplace(p->internal_id, p);
      }
      impl.dispatch(p);
      return true;
    }

    // Replicated write: fan out to every replica (the down ones are
    // recorded as missing so the fanout still finalizes).
    std::vector<std::shared_ptr<Pending>> to_send;
    Impl::Outbox all_down_outbox;
    {
      std::lock_guard<std::mutex> lock(impl.mutex);
      auto fanout = std::make_shared<Fanout>();
      fanout->client_id = client_id;
      fanout->emit = emit;
      fanout->op = op;
      fanout->graph = graph;
      fanout->primary = replicas.front();
      for (const std::size_t index : replicas) {
        if (impl.shards[index]->state != ShardState::kUp) {
          fanout->responses.emplace_back(index, svc::Json());
          continue;
        }
        auto p = std::make_shared<Pending>();
        p->internal_id = impl.fresh_id();
        p->client_id = client_id;
        p->emit = emit;
        p->op = op;
        p->graph = graph;
        p->target = index;
        p->fanout = fanout;
        svc::Json copy = request;
        copy.set("id", p->internal_id);
        p->line = copy.dump() + "\n";
        impl.pending.emplace(p->internal_id, p);
        ++fanout->awaiting;
        to_send.push_back(std::move(p));
      }
      if (fanout->awaiting == 0) {
        // Every replica is down: finalize immediately (degraded).
        impl.finalize_fanout_locked(fanout, all_down_outbox);
      }
    }
    all_down_outbox.flush();
    for (const std::shared_ptr<Pending>& p : to_send) impl.dispatch(p);
    return true;
  } catch (const std::exception& e) {
    emit(error_response(client_id, e.what()).dump());
    return true;
  }
}

void Cluster::drain(double timeout_seconds) {
  Impl& impl = *impl_;
  Impl::Outbox outbox;
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    impl.cv.wait_for(lock, seconds_to_duration(timeout_seconds),
                     [&impl] { return impl.pending.empty(); });
    // Bounded: anything still outstanding answers degraded rather than
    // holding the caller hostage.
    for (const auto& [id, p] : impl.pending) {
      if (p->internal) continue;
      if (p->fanout) {
        p->fanout->responses.emplace_back(p->target, svc::Json());
        if (--p->fanout->awaiting == 0)
          impl.finalize_fanout_locked(p->fanout, outbox);
      } else {
        outbox.add(p->emit, impl.degraded_response_locked(*p));
      }
    }
    impl.pending.clear();
  }
  outbox.flush();
}

std::vector<ShardStatus> Cluster::shard_statuses() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<ShardStatus> out;
  out.reserve(impl_->shards.size());
  for (const std::unique_ptr<Shard>& owned : impl_->shards) {
    const Shard& shard = *owned;
    ShardStatus status;
    status.shard = shard.index;
    status.state = shard.state;
    status.pid = shard.pid;
    status.restarts = shard.restarts;
    status.deaths_exit = shard.deaths_exit;
    status.deaths_signal = shard.deaths_signal;
    status.deaths_heartbeat = shard.deaths_heartbeat;
    status.last_death = shard.last_death;
    out.push_back(std::move(status));
  }
  return out;
}

svc::Json Cluster::cluster_stats_json() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->cluster_stats_locked();
}

void Cluster::inject_fault(std::size_t shard_index, ChaosAction action) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (shard_index >= impl_->shards.size()) return;
  Shard& shard = *impl_->shards[shard_index];
  if (shard.state != ShardState::kUp || shard.pid < 0 || shard.reap_pending)
    return;
  if (action == ChaosAction::kKill) {
    ++impl_->chaos_kills;
    ::kill(shard.pid, SIGKILL);
  } else {
    ++impl_->chaos_stalls;
    ::kill(shard.pid, SIGSTOP);
  }
}

bool Cluster::wait_for_shard_up(std::size_t shard_index,
                                double timeout_seconds) {
  if (shard_index >= impl_->shards.size()) return false;
  Impl& impl = *impl_;
  const Clock::time_point deadline =
      Clock::now() + seconds_to_duration(timeout_seconds);
  while (Clock::now() < deadline) {
    std::shared_ptr<Pending> probe;
    {
      std::lock_guard<std::mutex> lock(impl.mutex);
      Shard& shard = *impl.shards[shard_index];
      if (shard.state == ShardState::kUp && !shard.reap_pending) {
        probe = std::make_shared<Pending>();
        probe->internal_id = impl.fresh_id();
        probe->internal = true;
        probe->op = "ping";
        probe->target = shard_index;
        probe->probe = std::make_shared<std::atomic<bool>>(false);
        probe->line = svc::Json::object()
                          .set("id", probe->internal_id)
                          .set("op", "ping")
                          .dump() +
                      "\n";
        impl.pending.emplace(probe->internal_id, probe);
      }
    }
    if (probe) {
      impl.dispatch(probe);
      const Clock::time_point probe_deadline =
          std::min(deadline, Clock::now() + seconds_to_duration(0.25));
      std::unique_lock<std::mutex> lock(impl.mutex);
      impl.cv.wait_until(lock, probe_deadline,
                         [&probe] { return probe->probe->load(); });
      if (probe->probe->load()) return true;
      impl.pending.erase(probe->internal_id);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return false;
}

}  // namespace camc::cluster
