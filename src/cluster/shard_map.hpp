#pragma once

// ShardMap: consistent hashing of graph keyspaces onto serve shards.
//
// The router owns N camc_serve worker processes and must decide, per
// request, which worker(s) a graph lives on. The map hashes the routing
// key (the client-visible graph name — the only identity that exists
// before a graph is staged; its content fingerprint then names the
// persisted artifacts inside the chosen shard's store directory) onto a
// ring of seeded virtual nodes, so:
//
//   - the assignment is a pure function of (key, shard count, seed) —
//     every router replica and every restart agrees without coordination,
//   - keys spread evenly (vnodes smooth the distribution), and
//   - growing the cluster by one shard moves only ~1/N of the keyspace.
//
// `replication` > 1 returns that many *distinct* shards per key, primary
// first: writes (gen/load/save/evict) fan out to all of them, queries
// prefer the primary and fail over down the list, and the keyspace only
// answers `degraded` when every replica is down at once.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace camc::cluster {

/// Stable 64-bit routing fingerprint of a key (FNV-1a, documented in
/// docs/CLUSTER.md — changing it reshuffles every keyspace).
std::uint64_t route_fingerprint(std::string_view key) noexcept;

class ShardMap {
 public:
  /// `shards` >= 1; `replication` is clamped to [1, shards]; `vnodes`
  /// virtual nodes per shard smooth the split.
  ShardMap(std::size_t shards, std::size_t replication,
           std::uint64_t seed = 0x434C5553544552ull,  // "CLUSTER"
           std::size_t vnodes = 64);

  std::size_t shards() const noexcept { return shards_; }
  std::size_t replication() const noexcept { return replication_; }

  /// The shards owning `key`, primary first; `replication` distinct
  /// entries (fewer only if the cluster is smaller than the replication
  /// factor, which the constructor already clamps away).
  std::vector<std::size_t> replicas(std::string_view key) const;

  /// Primary shard only (replicas(key).front()).
  std::size_t primary(std::string_view key) const;

 private:
  std::size_t shards_;
  std::size_t replication_;
  /// Ring points sorted by position; .second is the owning shard.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace camc::cluster
