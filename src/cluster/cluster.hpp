#pragma once

// camc::cluster — a supervised, sharded serve cluster behind one NDJSON
// front-end.
//
// A Cluster forks N camc_serve worker processes (the *shards*), spreads
// resident graphs across them by consistent hashing of the graph name
// (shard_map.hpp, with a replication knob), and forwards the protocol-v1
// line stream over pipes: requests fan in through handle_line(), worker
// response lines fan back out through the emit callback with the client's
// ids restored. tools/camc_router.cpp is the stdin/stdout wrapper — to a
// client, a router is indistinguishable from a single camc_serve, except
// that its capacity is N workers wide and a worker crash is survivable.
//
// Robustness model (docs/CLUSTER.md has the full lifecycle state machine):
//
//   detection   Per-shard health is watched two ways: pipe EOF from the
//               reader thread (a dead process closes its pipes) and ping
//               heartbeats from the supervisor thread (a *wedged* process
//               keeps its pipes open but stops answering; after
//               `heartbeat_miss_limit` unanswered pings it is declared
//               dead and killed — SIGTERM first so camc_serve can flush
//               its persist layer, SIGKILL after a grace period).
//   forensics   Every death is reaped and classified — exit code vs.
//               signal vs. heartbeat timeout — and counted per shard,
//               mirroring the rank-level watchdog's straggler reports.
//   restart     Dead shards respawn under bounded exponential backoff
//               with seeded jitter (resilience::RetryPolicy — the jitter
//               keeps N shards dying together from thundering-herd on the
//               store directory). A respawned worker warm-restarts from
//               its own store directory (<store_dir>/shard-<k>), so the
//               graphs and cached results it persisted come back without
//               re-staging — PR 7's warm restart applied to crash
//               recovery. The router auto-saves every successfully staged
//               graph to make that rehydration complete.
//   re-dispatch In-flight requests on a dead shard are not lost: queries
//               re-dispatch to the next live replica (safe because a
//               query is idempotent by (fingerprint, kind, params, seed)
//               — a duplicate execution lands in the replica's
//               ResultCache and returns the identical answer), and
//               replicated writes complete on the surviving replicas.
//   degradation While a keyspace has no live replica, its requests answer
//               a structured `status:"degraded"` response immediately —
//               never a hang. `stats` aggregates per-shard metrics and
//               reports shard liveness, restart counts, and re-route
//               counts (docs/PROTOCOL.md, "Cluster extensions").
//
// A seeded chaos plan (chaos.hpp) can kill/stall the cluster's own
// workers on a deterministic schedule, turning the whole machinery into a
// replayable campaign (tools/run_cluster_campaign.sh).
//
// Threading: handle_line() may be called from any one client thread;
// emits fire from reader/supervisor threads as responses arrive, so the
// emit callback must be thread-safe (same contract as svc::Service).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/chaos.hpp"
#include "cluster/shard_map.hpp"
#include "resilience/retry.hpp"
#include "svc/json.hpp"

namespace camc::cluster {

struct ClusterOptions {
  /// Path to the camc_serve binary to fork per shard.
  std::string serve_path;
  std::size_t shards = 4;
  /// Distinct shards per keyspace (clamped to [1, shards]). Writes fan
  /// out to all replicas; queries fail over down the list.
  std::size_t replication = 1;
  /// Root store directory; shard k persists under <store_dir>/shard-<k>.
  /// Empty disables persistence (and therefore warm crash recovery).
  std::string store_dir;
  /// After a successful gen/load, persist the graph on every replica so a
  /// crashed shard rehydrates it on restart. Requires store_dir.
  bool auto_save = true;
  /// Spread queries across up replicas with a seeded round-robin instead
  /// of always preferring the primary. Safe because replicated writes
  /// (gen/load/evict/save/add_edges/remove_edges) fan out to every
  /// replica in submission order over FIFO pipes, so all replicas hold
  /// bit-identical state for any given request ordering.
  bool read_balance = true;
  std::uint64_t read_balance_seed = 0x52454144;  // "READ"

  // Worker knobs, forwarded to each camc_serve.
  int worker_threads = 2;
  std::size_t worker_queue = 256;
  std::size_t worker_batch = 16;
  std::size_t worker_cache = 4096;
  std::uint64_t worker_seed = 1;
  std::string worker_cc_engine;  ///< empty: camc_serve's default

  /// Supervisor tick / ping cadence.
  double heartbeat_interval_seconds = 0.1;
  /// Unanswered pings before a shard is declared wedged and killed.
  std::uint32_t heartbeat_miss_limit = 30;
  /// SIGTERM-to-SIGKILL escalation grace for supervisor kills.
  double kill_grace_seconds = 1.0;

  /// Backoff between restart attempts of one shard (jitter recommended;
  /// see RetryPolicy::jitter). max_attempts is ignored here — restarts
  /// are bounded by max_restarts below instead.
  resilience::RetryPolicy restart{.max_attempts = 1,
                                  .backoff_base_seconds = 0.05,
                                  .backoff_max_seconds = 2.0,
                                  .jitter = 0.5,
                                  .jitter_seed = 0x524F5554ull};
  /// Total restarts allowed per shard; 0 = unbounded. A shard over the
  /// limit stays down and its keyspace answers degraded.
  std::uint32_t max_restarts = 0;
  /// A shard that stayed up this long gets its backoff attempt reset, so
  /// a crash after hours of service restarts promptly.
  double backoff_reset_uptime_seconds = 5.0;

  /// Seeded kill/stall schedule against our own workers (chaos.hpp
  /// grammar); empty disables chaos.
  std::string chaos_plan;
};

enum class ShardState : std::uint8_t {
  kUp = 0,       ///< process running, pipes open
  kBackoff = 1,  ///< dead; restart scheduled (or reap pending)
  kStopped = 2,  ///< out of restart budget, or cluster shutting down
};

const char* shard_state_name(ShardState state) noexcept;

enum class DeathCause : std::uint8_t {
  kExit = 0,              ///< child exited on its own (nonzero or zero)
  kSignal = 1,            ///< child died from a signal (crash, chaos kill)
  kHeartbeatTimeout = 2,  ///< supervisor killed it for missed heartbeats
};

/// Point-in-time view of one shard, for stats and tests.
struct ShardStatus {
  std::size_t shard = 0;
  ShardState state = ShardState::kBackoff;
  long pid = -1;
  std::uint64_t restarts = 0;
  std::uint64_t deaths_exit = 0;
  std::uint64_t deaths_signal = 0;
  std::uint64_t deaths_heartbeat = 0;
  std::string last_death;  ///< e.g. "signal 9", "exit 127", empty if none
};

class Cluster {
 public:
  using Emit = std::function<void(const std::string&)>;

  /// Forks the shards (throws std::runtime_error if no worker can be
  /// spawned) and starts the supervisor; workers warm-restart themselves
  /// from their store directories before answering their first request.
  explicit Cluster(const ClusterOptions& options);

  /// Stops chaos + supervisor, closes worker stdins, escalates
  /// EOF → SIGTERM → SIGKILL on stragglers, reaps everything.
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routes one request line. Returns false when the line was a shutdown
  /// request (forwarded to every live shard; the response is still
  /// emitted); true otherwise. Never throws: malformed input becomes a
  /// status:"error" response, a down keyspace a status:"degraded" one.
  bool handle_line(const std::string& line, const Emit& emit);

  /// Waits until no forwarded request is outstanding; any survivor past
  /// the timeout is answered degraded (bounded — never a hang).
  void drain(double timeout_seconds = 30.0);

  std::vector<ShardStatus> shard_statuses() const;
  /// The "cluster" object aggregated into stats responses.
  svc::Json cluster_stats_json() const;

  const ShardMap& shard_map() const noexcept { return map_; }

  // Test / chaos hooks.
  /// SIGKILLs (or SIGSTOPs) a shard's current process, as a chaos event
  /// would. No-op if the shard is not up.
  void inject_fault(std::size_t shard, ChaosAction action);
  /// Blocks until the shard answers a fresh ping (true) or the timeout
  /// passes (false).
  bool wait_for_shard_up(std::size_t shard, double timeout_seconds);

 private:
  struct Shard;
  struct Pending;
  struct Fanout;
  struct Impl;

  ClusterOptions options_;
  ShardMap map_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace camc::cluster
