#pragma once

// Seeded chaos plans for the supervised serve cluster.
//
// A ChaosPlan is the process-level analogue of resilience::FaultPlan: a
// deterministic, replayable schedule of worker kills and stalls, drawn
// once from a Philox stream at construction. `camc_router --chaos-plan=
// seed=S,...` injects it against its own workers, which turns the
// supervisor's crash-detection / restart / re-route machinery into a
// seeded campaign — the same schedule always kills the same shards at the
// same offsets, so an incident reproduces from its seed alone.
//
// Spec grammar (comma-separated key=value, unknown keys rejected):
//
//   seed=S            Philox seed (required)
//   events=N          number of injected events (default 4)
//   start-ms=A        quiet period before the first event (default 200)
//   min-delay-ms=B    minimum gap between events (default 50)
//   max-delay-ms=C    maximum gap between events (default 400)
//   kill-weight=K     relative weight of SIGKILL events (default 3)
//   stall-weight=L    relative weight of SIGSTOP events (default 1)
//
// Kills exercise pipe-EOF death detection; stalls freeze the worker until
// the supervisor's heartbeat timeout declares it dead and replaces it (the
// stalled process is then killed, not resumed — exactly the straggler
// semantics of the rank-level watchdog).

#include <cstdint>
#include <string>
#include <vector>

namespace camc::cluster {

enum class ChaosAction : std::uint8_t { kKill = 0, kStall = 1 };

struct ChaosEvent {
  double at_seconds = 0.0;  ///< offset from injector start
  std::size_t shard = 0;
  ChaosAction action = ChaosAction::kKill;
};

struct ChaosPlan {
  std::uint64_t seed = 0;
  std::vector<ChaosEvent> events;  ///< sorted by at_seconds

  bool empty() const noexcept { return events.empty(); }
};

/// Parses a spec and draws the schedule for a `shards`-wide cluster.
/// Throws std::runtime_error on malformed specs. An empty spec string
/// yields an empty plan (chaos disabled).
ChaosPlan parse_chaos_plan(const std::string& spec, std::size_t shards);

const char* chaos_action_name(ChaosAction action) noexcept;

}  // namespace camc::cluster
