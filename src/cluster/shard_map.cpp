#include "cluster/shard_map.hpp"

#include <algorithm>

namespace camc::cluster {

namespace {

/// splitmix64 finalizer: turns (seed, shard, vnode) into a ring position.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t route_fingerprint(std::string_view key) noexcept {
  // FNV-1a 64. Stable across platforms and releases: the per-shard store
  // directories are addressed through it, so a change would orphan every
  // persisted keyspace.
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

ShardMap::ShardMap(std::size_t shards, std::size_t replication,
                   std::uint64_t seed, std::size_t vnodes)
    : shards_(std::max<std::size_t>(1, shards)),
      replication_(std::clamp<std::size_t>(replication, 1, shards_)) {
  vnodes = std::max<std::size_t>(1, vnodes);
  ring_.reserve(shards_ * vnodes);
  for (std::size_t shard = 0; shard < shards_; ++shard)
    for (std::size_t vnode = 0; vnode < vnodes; ++vnode)
      ring_.emplace_back(mix64(mix64(seed ^ (shard * 0x10001u)) + vnode),
                         shard);
  std::sort(ring_.begin(), ring_.end());
}

std::vector<std::size_t> ShardMap::replicas(std::string_view key) const {
  const std::uint64_t point = route_fingerprint(key);
  std::vector<std::size_t> out;
  out.reserve(replication_);
  // First ring point at or after the key's position, wrapping.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, static_cast<std::size_t>(0)));
  for (std::size_t walked = 0; walked < ring_.size() && out.size() < replication_;
       ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
    ++it;
  }
  return out;
}

std::size_t ShardMap::primary(std::string_view key) const {
  return replicas(key).front();
}

}  // namespace camc::cluster
