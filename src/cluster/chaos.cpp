#include "cluster/chaos.hpp"

#include <algorithm>
#include <stdexcept>

#include "rng/philox.hpp"

namespace camc::cluster {

namespace {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(delimiter, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

const char* chaos_action_name(ChaosAction action) noexcept {
  return action == ChaosAction::kKill ? "kill" : "stall";
}

ChaosPlan parse_chaos_plan(const std::string& spec, std::size_t shards) {
  ChaosPlan plan;
  if (spec.empty()) return plan;
  if (shards == 0) throw std::runtime_error("chaos plan needs >= 1 shard");

  bool have_seed = false;
  std::uint64_t events = 4, start_ms = 200, min_delay_ms = 50,
                max_delay_ms = 400, kill_weight = 3, stall_weight = 1;
  for (const std::string& part : split(spec, ',')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("chaos plan entry '" + part +
                               "' is not key=value");
    const std::string key = part.substr(0, eq);
    std::uint64_t value = 0;
    try {
      value = std::stoull(part.substr(eq + 1));
    } catch (const std::exception&) {
      throw std::runtime_error("chaos plan value in '" + part +
                               "' is not a number");
    }
    if (key == "seed") {
      plan.seed = value;
      have_seed = true;
    } else if (key == "events") {
      events = value;
    } else if (key == "start-ms") {
      start_ms = value;
    } else if (key == "min-delay-ms") {
      min_delay_ms = value;
    } else if (key == "max-delay-ms") {
      max_delay_ms = value;
    } else if (key == "kill-weight") {
      kill_weight = value;
    } else if (key == "stall-weight") {
      stall_weight = value;
    } else {
      throw std::runtime_error("unknown chaos plan key '" + key + "'");
    }
  }
  if (!have_seed) throw std::runtime_error("chaos plan needs seed=");
  if (max_delay_ms < min_delay_ms)
    throw std::runtime_error("chaos plan max-delay-ms < min-delay-ms");
  if (kill_weight + stall_weight == 0)
    throw std::runtime_error("chaos plan weights are all zero");

  rng::Philox rng(plan.seed, /*stream=*/0x4348414Full);  // "CHAO"
  double at = static_cast<double>(start_ms) / 1e3;
  plan.events.reserve(events);
  for (std::uint64_t i = 0; i < events; ++i) {
    ChaosEvent event;
    event.at_seconds = at;
    event.shard = rng() % shards;
    event.action = (rng() % (kill_weight + stall_weight)) < kill_weight
                       ? ChaosAction::kKill
                       : ChaosAction::kStall;
    plan.events.push_back(event);
    const std::uint64_t span = max_delay_ms - min_delay_ms;
    at += static_cast<double>(min_delay_ms +
                              (span > 0 ? rng() % (span + 1) : 0)) /
          1e3;
  }
  return plan;
}

}  // namespace camc::cluster
